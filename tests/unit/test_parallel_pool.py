"""Unit tests for the worker pool: timeouts, retries, serial fallback.

The injected failure workers misbehave *only inside a worker process*
(detected via ``multiprocessing.parent_process()``), so the pool's serial
fallback — which runs the same callable in the parent — can be observed
succeeding after the worker attempts fail, without ever hanging the
suite.
"""

import multiprocessing
import os
import time

import pytest

from repro.errors import ConfigError
from repro.parallel.pool import (
    PoolConfig,
    WorkerPool,
    resolve_n_jobs,
)


def _square(value):
    return value * value


def _crash_in_worker(payload):
    if multiprocessing.parent_process() is not None:
        os._exit(3)
    return ("parent", payload)


def _always_raise(payload):
    raise ValueError(f"boom {payload}")


def _hang_in_worker(payload):
    if multiprocessing.parent_process() is not None:
        time.sleep(60)
    return ("parent", payload)


def _flaky(payload):
    """Crash until *fails* attempts are on record in the counter file."""
    path, fails = payload
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("x")
    with open(path, encoding="utf-8") as handle:
        attempts = len(handle.read())
    if attempts <= fails and multiprocessing.parent_process() is not None:
        os._exit(1)
    return "ok"


class TestConfig:
    def test_defaults_are_serial(self):
        assert PoolConfig().n_jobs == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_jobs": 0},
            {"timeout": 0.0},
            {"timeout": -1},
            {"retries": -1},
            {"backoff": -0.1},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigError):
            PoolConfig(**kwargs)

    def test_resolve_n_jobs(self):
        assert resolve_n_jobs(3) == 3
        assert resolve_n_jobs(None) >= 1
        with pytest.raises(ConfigError):
            resolve_n_jobs(0)


class TestSerialMode:
    def test_runs_in_parent_in_order(self):
        pool = WorkerPool(PoolConfig(n_jobs=1))
        assert pool.map(_square, [1, 2, 3]) == [1, 4, 9]
        assert pool.stats.serial_tasks == 3
        assert pool.stats.workers_launched == 0

    def test_exceptions_propagate(self):
        pool = WorkerPool(PoolConfig(n_jobs=1))
        with pytest.raises(ValueError, match="boom"):
            pool.map(_always_raise, [7])

    def test_empty_payloads(self):
        assert WorkerPool().map(_square, []) == []


class TestParallelMode:
    def test_results_in_submission_order(self):
        pool = WorkerPool(PoolConfig(n_jobs=2))
        assert pool.map(_square, list(range(7))) == [
            value * value for value in range(7)
        ]
        assert pool.stats.tasks == 7
        assert pool.stats.workers_launched == 7
        assert pool.stats.fallbacks == 0

    def test_crashed_worker_retries_then_falls_back(self):
        pool = WorkerPool(PoolConfig(n_jobs=2, retries=1, backoff=0.0))
        results = pool.map(_crash_in_worker, ["a", "b"])
        assert results == [("parent", "a"), ("parent", "b")]
        assert pool.stats.crashes == 4  # 2 tasks x (1 try + 1 retry)
        assert pool.stats.retries == 2
        assert pool.stats.fallbacks == 2

    def test_zero_retries_goes_straight_to_fallback(self):
        pool = WorkerPool(PoolConfig(n_jobs=2, retries=0))
        assert pool.map(_crash_in_worker, ["x"]) == [("parent", "x")]
        assert pool.stats.retries == 0
        assert pool.stats.fallbacks == 1

    def test_worker_exception_counts_and_fallback_reraises(self):
        pool = WorkerPool(PoolConfig(n_jobs=2, retries=0))
        with pytest.raises(ValueError, match="boom"):
            pool.map(_always_raise, [1])
        assert pool.stats.errors == 1

    def test_flaky_worker_succeeds_on_retry_without_fallback(self, tmp_path):
        counter = str(tmp_path / "attempts")
        pool = WorkerPool(PoolConfig(n_jobs=2, retries=3, backoff=0.0))
        assert pool.map(_flaky, [(counter, 2)]) == ["ok"]
        assert pool.stats.retries >= 1
        assert pool.stats.fallbacks == 0

    def test_timeout_kills_worker_and_falls_back(self):
        pool = WorkerPool(
            PoolConfig(n_jobs=2, timeout=0.5, retries=0, backoff=0.0)
        )
        start = time.monotonic()
        assert pool.map(_hang_in_worker, ["t"]) == [("parent", "t")]
        assert time.monotonic() - start < 30.0  # killed, not joined
        assert pool.stats.timeouts == 1
        assert pool.stats.fallbacks == 1

    def test_timeout_then_retry_succeeds(self, tmp_path):
        counter = str(tmp_path / "attempts")
        # First attempt crashes, retry returns: proves the pool re-runs
        # the same payload rather than dropping it.
        pool = WorkerPool(PoolConfig(n_jobs=2, retries=1, backoff=0.0))
        assert pool.map(_flaky, [(counter, 1)]) == ["ok"]
        assert pool.stats.retries == 1

    def test_stats_accumulate_across_maps(self):
        pool = WorkerPool(PoolConfig(n_jobs=2))
        pool.map(_square, [1])
        pool.map(_square, [2])
        assert pool.stats.tasks == 2
        assert pool.stats.workers_launched == 2
