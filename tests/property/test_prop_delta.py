"""Property-based tests: delta application vs compiling from scratch.

The streaming subsystem's soundness claim (DESIGN.md §13) is that
pushing a :class:`repro.stream.delta.RuleIndexDelta` to a live index is
indistinguishable from recompiling the index from the new rule set:
``old.apply_delta(diff(old, new_rules))`` must be *bit-identical* —
same serialized JSON, hence same slots, postings and version — to
``RuleIndex(new_rules, version=old.version + 1)``. The scenarios cover
flat and taxonomy-aware indexes, rule addition, removal, strength
reordering (same identity, new statistics), taxonomy replacement, and
the delta's own wire round-trip.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rulegen import NegativeRule
from repro.mining.rules import AssociationRule
from repro.serve import RuleIndex
from repro.stream import RuleIndexDelta
from repro.taxonomy.tree import Taxonomy


def _build_taxonomy(rng: random.Random) -> Taxonomy:
    """A random two-level taxonomy over items 1..30 (roots 101..)."""
    parents = {}
    categories = list(range(101, 101 + rng.randint(1, 4)))
    for item in range(1, 31):
        if rng.random() < 0.8:
            parents[item] = rng.choice(categories)
    return Taxonomy(parents=parents, extra_roots=range(1, 31))


def _random_identity(rng: random.Random) -> tuple[tuple, tuple]:
    items = list(range(1, 31))
    antecedent = tuple(sorted(rng.sample(items, rng.randint(1, 3))))
    rest = [item for item in items if item not in antecedent]
    consequent = tuple(sorted(rng.sample(rest, rng.randint(1, 2))))
    return antecedent, consequent


def _negative(rng, antecedent, consequent) -> NegativeRule:
    return NegativeRule(
        antecedent=antecedent,
        consequent=consequent,
        ri=rng.uniform(0.1, 5.0),
        expected_support=rng.uniform(0.1, 0.5),
        actual_support=rng.uniform(0.0, 0.05),
        antecedent_support=rng.uniform(0.2, 0.6),
        consequent_support=rng.uniform(0.2, 0.6),
    )


def _positive(rng, antecedent, consequent) -> AssociationRule:
    return AssociationRule(
        antecedent=antecedent,
        consequent=consequent,
        support=rng.uniform(0.05, 0.5),
        confidence=rng.uniform(0.3, 1.0),
    )


@st.composite
def evolutions(draw):
    """An old compiled index plus the freshly mined rule set.

    Each distinct rule identity is assigned a fate: old-only (the delta
    must remove it), new-only (add it), kept verbatim (untouched), or
    restated with new statistics (the strength-reordering case).
    """
    seed = draw(st.integers(min_value=0, max_value=1_000_000))
    with_taxonomy = draw(st.booleans())
    taxonomy_changes = draw(st.booleans())
    rng = random.Random(seed)

    identities = []
    seen = set()
    for _ in range(rng.randint(0, 16)):
        kind = rng.choice(("negative", "positive"))
        antecedent, consequent = _random_identity(rng)
        if (kind, antecedent, consequent) in seen:
            continue
        seen.add((kind, antecedent, consequent))
        identities.append((kind, antecedent, consequent))

    old_negatives, old_positives = [], []
    new_negatives, new_positives = [], []
    for kind, antecedent, consequent in identities:
        build = _negative if kind == "negative" else _positive
        olds = old_negatives if kind == "negative" else old_positives
        news = new_negatives if kind == "negative" else new_positives
        fate = rng.choice(("removed", "added", "kept", "restated"))
        if fate != "added":
            rule = build(rng, antecedent, consequent)
            olds.append(rule)
            if fate == "kept":
                news.append(rule)
        if fate == "added" or fate == "restated":
            news.append(build(rng, antecedent, consequent))

    old_taxonomy = _build_taxonomy(rng) if with_taxonomy else None
    if taxonomy_changes:
        new_taxonomy = _build_taxonomy(rng) if rng.random() < 0.8 else None
    else:
        new_taxonomy = old_taxonomy

    old = RuleIndex(
        negative_rules=old_negatives,
        positive_rules=old_positives,
        taxonomy=old_taxonomy,
        version=rng.randint(1, 40),
    )
    return old, new_negatives, new_positives, new_taxonomy


@given(evolutions())
@settings(max_examples=150, deadline=None)
def test_apply_delta_is_bit_identical_to_fresh_compile(evolution):
    old, negatives, positives, taxonomy = evolution
    fresh = RuleIndex(
        negative_rules=negatives,
        positive_rules=positives,
        taxonomy=taxonomy,
        version=old.version + 1,
    )
    delta = RuleIndexDelta.diff(old, negatives, positives, taxonomy=taxonomy)
    assert old.apply_delta(delta).to_json() == fresh.to_json()


@given(evolutions())
@settings(max_examples=60, deadline=None)
def test_delta_survives_its_wire_round_trip(evolution):
    """The ``reload_delta`` payload must lose nothing: applying the
    round-tripped delta produces the same index as the original."""
    old, negatives, positives, taxonomy = evolution
    delta = RuleIndexDelta.diff(old, negatives, positives, taxonomy=taxonomy)
    recovered = RuleIndexDelta.from_json(delta.to_json())
    # Taxonomy objects compare by identity, so the contract is payload
    # equality plus identical application results.
    assert recovered.to_payload() == delta.to_payload()
    assert (
        old.apply_delta(recovered).to_json()
        == old.apply_delta(delta).to_json()
    )


@given(evolutions())
@settings(max_examples=60, deadline=None)
def test_delta_edits_partition_the_identity_space(evolution):
    """Every identity is added, removed, changed or silently kept —
    never two of those — and kept rules carry identical statistics."""
    old, negatives, positives, taxonomy = evolution
    delta = RuleIndexDelta.diff(old, negatives, positives, taxonomy=taxonomy)
    from repro.serve.rule_index import rule_key

    old_keys = {rule_key(entry.rule) for entry in old.rules}
    new_keys = {rule_key(rule) for rule in (*negatives, *positives)}
    added = {rule_key(rule) for rule in delta.added}
    changed = {rule_key(rule) for rule in delta.changed}
    removed = set(delta.removed)
    assert added == new_keys - old_keys
    assert removed == old_keys - new_keys
    assert changed <= old_keys & new_keys
    assert not (added & changed) and not (removed & changed)
