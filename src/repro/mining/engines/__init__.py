"""Pluggable support-counting engines behind a self-registration registry.

Importing this package registers the built-in engines; everything else
(the CLI ``engines`` subcommand, benchmarks, property tests) enumerates
the registry instead of hard-coding names. See :mod:`.base` for the
protocol and DESIGN.md §9 for the architecture.
"""

from __future__ import annotations

from .base import (
    Capabilities,
    CountingEngine,
    EnginePolicy,
    EngineState,
    all_engine_specs,
    count_pass,
    create_engine,
    engine_names,
    parse_spec,
    register_engine,
    registered_engines,
    serial_engine_names,
    validate_candidates,
    validate_spec,
)

# Importing the implementation modules is what registers them; the
# import order fixes the registry (and therefore ENGINES) order.
from . import serial as _serial  # noqa: E402  (bitmap, hashtree, index, brute)
from . import cached as _cached  # noqa: E402
from . import packed as _packed  # noqa: E402  (numpy)
from . import outofcore as _outofcore  # noqa: E402  (mmap)
from . import parallel as _parallel  # noqa: E402
from .cached import CachedEngine
from .outofcore import MmapEngine
from .packed import NumpyEngine
from .parallel import ParallelEngine, ParallelShmEngine
from .serial import (
    BitmapEngine,
    BruteEngine,
    HashTreeEngine,
    IndexEngine,
    RowScanEngine,
    extended_rows,
)

del _serial, _cached, _packed, _outofcore, _parallel

#: All registered engine names, in registration order.
ENGINES = engine_names()

#: The engines that count rows in-process; ``"parallel"`` delegates each
#: shard to one of these.
SERIAL_ENGINES = serial_engine_names()

DEFAULT_ENGINE = "bitmap"


def _first_doc_line(cls: type) -> str:
    doc = (cls.__doc__ or "").strip()
    first = doc.splitlines()[0].strip() if doc else ""
    return first.rstrip(".")


def capability_table(markdown: bool = False) -> str:
    """The registered engines with their capability flags, as text.

    Generated from the registry — never hand-written — so the CLI's
    ``engines`` subcommand and the README table cannot drift from the
    code. With *markdown* the output is a GitHub table.
    """
    from .base import Capabilities as _Caps
    from dataclasses import fields as _fields

    flag_names = [f.name for f in _fields(_Caps)]
    rows = []
    for name, cls in registered_engines().items():
        caps = cls.capabilities
        flags = [
            "yes" if getattr(caps, flag) else "-" for flag in flag_names
        ]
        rows.append([name, *flags, _first_doc_line(cls)])
    header = ["engine", *flag_names, "description"]
    if markdown:
        lines = [
            "| " + " | ".join(header) + " |",
            "|" + "|".join("---" for _ in header) + "|",
        ]
        lines.extend("| " + " | ".join(row) + " |" for row in rows)
        return "\n".join(lines)
    widths = [
        max(len(header[col]), *(len(row[col]) for row in rows))
        for col in range(len(header) - 1)
    ]
    lines = [
        "  ".join(
            header[col].ljust(widths[col])
            for col in range(len(widths))
        )
        + "  "
        + header[-1]
    ]
    for row in rows:
        lines.append(
            "  ".join(
                row[col].ljust(widths[col]) for col in range(len(widths))
            )
            + "  "
            + row[-1]
        )
    return "\n".join(lines)


__all__ = [
    "Capabilities",
    "CountingEngine",
    "EnginePolicy",
    "EngineState",
    "BitmapEngine",
    "BruteEngine",
    "CachedEngine",
    "HashTreeEngine",
    "IndexEngine",
    "MmapEngine",
    "NumpyEngine",
    "ParallelEngine",
    "ParallelShmEngine",
    "RowScanEngine",
    "ENGINES",
    "SERIAL_ENGINES",
    "DEFAULT_ENGINE",
    "all_engine_specs",
    "capability_table",
    "count_pass",
    "create_engine",
    "engine_names",
    "extended_rows",
    "parse_spec",
    "register_engine",
    "registered_engines",
    "serial_engine_names",
    "validate_candidates",
    "validate_spec",
]
