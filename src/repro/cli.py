"""Command-line interface: ``python -m repro`` / ``repro-mine``.

Subcommands
-----------
``generate``
    Emit a synthetic dataset (basket + taxonomy files) with the paper's
    generator.
``mine``
    Mine strong negative association rules from a basket/taxonomy pair.
``positive``
    Mine generalized positive association rules (the substrate on its
    own).
``inspect``
    Print summary statistics of a basket/taxonomy pair.
``analyze``
    Taxonomy diagnostics: structural profile, coarse-category report,
    per-category balance against the data (Section 2.1.3).
``engines``
    List the registered counting engines with their capability flags.
``measures``
    List the registered interestingness measures with their capability
    flags.
``compile``
    Mine rules and compile them into a serving rule index (one JSON
    file).
``serve``
    Serve a compiled rule index over TCP (newline-delimited JSON).
``score``
    Query a running rule server: score a basket, request on-target
    selective mining, or fetch server stats.
``watch``
    Watch a growing basket file: absorb appends, re-mine incrementally
    when a retrigger policy fires, and push versioned rule-index deltas
    to a running server.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from .core.api import MiningConfig, mine_negative_rules
from .core.session import MiningSession
from .measures.registry import measure_table
from .measures.registry import validate_spec as validate_measure_spec
from .mining.engines import (
    capability_table,
    engine_names,
    serial_engine_names,
    validate_spec,
)
from .obs.api import METRICS_MODES
from .data.io import (
    load_basket_file,
    load_taxonomy_file,
    save_basket_file,
    save_taxonomy_file,
)
from .core.explain import explain_result_rule
from .errors import ReproError
from .taxonomy.analysis import (
    category_balance,
    format_profile,
    granularity_report,
    profile,
)
from .mining.generalized import mine_generalized
from .mining.rules import generate_rules
from .serve import (
    RuleIndex,
    RuleService,
    SelectiveContext,
    request_once,
)
from .serve.service import run_service
from .stream import StreamingMiner, parse_policy, push_to_server
from .data.filedb import FileBackedDatabase
from .synthetic.generator import generate_dataset
from .synthetic.params import SHORT, TALL, GeneratorParams


def _engine_spec(value: str) -> str:
    """argparse type for ``--engine``: any registered spec.

    Plain names (``bitmap``) and compositions (``parallel:numpy``) both
    pass; anything else fails parsing with the registry's message.
    """
    try:
        validate_spec(value)
    except ReproError as error:
        raise argparse.ArgumentTypeError(str(error)) from error
    return value


def _measure_spec(value: str) -> str:
    """argparse type for ``--measure``: any registered measure name."""
    try:
        validate_measure_spec(value)
    except ReproError as error:
        raise argparse.ArgumentTypeError(str(error)) from error
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mine",
        description=(
            "Negative association rule mining "
            "(Savasere/Omiecinski/Navathe, ICDE 1998)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a synthetic dataset"
    )
    generate.add_argument(
        "--preset",
        choices=("short", "tall"),
        default="short",
        help="taxonomy shape: 'short' (fan-out 9) or 'tall' (fan-out 3)",
    )
    generate.add_argument("--transactions", type=int, default=None)
    generate.add_argument("--items", type=int, default=None)
    generate.add_argument("--scale", type=float, default=None,
                          help="scale all extensive parameters by a factor")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--baskets", required=True,
                          help="output basket file")
    generate.add_argument("--taxonomy", required=True,
                          help="output taxonomy file")

    mine = commands.add_parser(
        "mine", help="mine strong negative association rules"
    )
    _add_data_arguments(mine)
    mine.add_argument("--minsup", type=float, default=0.01)
    mine.add_argument("--minri", type=float, default=0.5)
    mine.add_argument("--miner", choices=("improved", "naive"),
                      default="improved")
    mine.add_argument("--algorithm",
                      choices=("basic", "cumulate", "estmerge"),
                      default="cumulate")
    mine.add_argument("--engine", type=_engine_spec, default="bitmap",
                      metavar="SPEC",
                      help="counting engine spec: a registered name or "
                           "'parallel:<inner>' (list with "
                           "'python -m repro engines')")
    mine.add_argument("--measure", type=_measure_spec, default="ri",
                      metavar="NAME",
                      help="interestingness measure judging candidates "
                           "and rules (list with "
                           "'python -m repro measures')")
    mine.add_argument("--max-size", type=int, default=None)
    mine.add_argument("--jobs", type=int, default=1, dest="n_jobs",
                      help="worker processes for sharded counting "
                           "(1 = serial)")
    mine.add_argument("--shard-rows", type=int, default=None,
                      dest="shard_rows",
                      help="target rows per shard (default: split each "
                           "pass into --jobs equal shards)")
    mine.add_argument("--no-cache", action="store_false", dest="use_cache",
                      help="cached engine: rebuild the vertical index on "
                           "every pass instead of reusing it")
    mine.add_argument("--cache-bytes", type=int, default=None,
                      dest="cache_bytes",
                      help="cached engine: LRU memory budget in bytes for "
                           "the vertical index (default: unbounded)")
    mine.add_argument("--packed", action=argparse.BooleanOptionalAction,
                      default=False,
                      help="cached engine: bit-packed index backend counted "
                           "with the NumPy kernel (identical output)")
    mine.add_argument("--shm", action=argparse.BooleanOptionalAction,
                      default=False,
                      help="parallel counting: publish the packed matrix "
                           "via shared memory and attach persistent "
                           "workers zero-copy (requires --jobs > 1 or a "
                           "parallel engine spec; identical output)")
    mine.add_argument("--segment-rows", type=int, default=None,
                      dest="segment_rows",
                      help="mmap engine: rows per spilled packed segment")
    mine.add_argument("--max-resident", type=int, default=None,
                      dest="max_resident_bytes", metavar="BYTES",
                      help="mmap engine: budget for concurrently open "
                           "segment blocks; evicted blocks are re-opened "
                           "as read-only memory maps on demand "
                           "(default: keep all blocks open)")
    mine.add_argument("--spill-dir", default=None, dest="spill_dir",
                      metavar="DIR",
                      help="mmap engine: parent directory for the "
                           "temporary segment spill directory "
                           "(default: the system temp dir)")
    mine.add_argument("--max-sibling-replacements", type=int,
                      default=None, dest="max_sibling_replacements",
                      help="cap Case-3 sibling replacements (1 = the paper's examples)")
    mine.add_argument("--trace", default=None, metavar="FILE",
                      dest="trace_path",
                      help="write a JSON-lines trace of spans and metrics "
                           "to FILE")
    mine.add_argument("--metrics", choices=METRICS_MODES, default="none",
                      help="print a metrics report to stderr when mining "
                           "finishes ('summary' = human-readable, "
                           "'json' = machine-readable)")
    mine.add_argument("--limit", type=int, default=25,
                      help="print at most this many rules")
    mine.add_argument("--explain", action="store_true",
                      help="print the full derivation of each rule")
    mine.add_argument("--agreement", action="store_true",
                      help="append a cross-measure agreement section to "
                           "each derivation (implies --explain): every "
                           "registered measure re-judges the run and "
                           "reports whether it admits the rule")

    positive = commands.add_parser(
        "positive", help="mine generalized positive association rules"
    )
    _add_data_arguments(positive)
    positive.add_argument("--minsup", type=float, default=0.01)
    positive.add_argument("--minconf", type=float, default=0.5)
    positive.add_argument("--algorithm",
                          choices=("basic", "cumulate", "estmerge"),
                          default="cumulate")
    positive.add_argument("--jobs", type=int, default=1, dest="n_jobs",
                          help="worker processes for sharded counting")
    positive.add_argument("--limit", type=int, default=25)

    inspect = commands.add_parser(
        "inspect", help="print dataset statistics"
    )
    _add_data_arguments(inspect)

    analyze = commands.add_parser(
        "analyze", help="taxonomy diagnostics (granularity, balance)"
    )
    _add_data_arguments(analyze)
    analyze.add_argument("--coarse-fanout", type=int, default=20,
                         help="flag categories with this many children")

    engines = commands.add_parser(
        "engines", help="list registered counting engines"
    )
    engines.add_argument("--markdown", action="store_true",
                         help="emit a GitHub-markdown table (the README's "
                              "engine table is generated with this)")

    measures = commands.add_parser(
        "measures", help="list registered interestingness measures"
    )
    measures.add_argument("--markdown", action="store_true",
                          help="emit a GitHub-markdown table (the "
                               "README's measure table is generated "
                               "with this)")

    compile_ = commands.add_parser(
        "compile",
        help="mine rules and compile a serving rule index",
    )
    _add_data_arguments(compile_)
    compile_.add_argument("--minsup", type=float, default=0.01)
    compile_.add_argument("--minri", type=float, default=0.5)
    compile_.add_argument("--minconf", type=float, default=0.5,
                          help="confidence threshold for the positive "
                               "rules compiled alongside the negatives")
    compile_.add_argument("--engine", type=_engine_spec, default="bitmap",
                          metavar="SPEC")
    compile_.add_argument("--measure", type=_measure_spec, default="ri",
                          metavar="NAME",
                          help="interestingness measure the compiled "
                               "negative rules are admitted by")
    compile_.add_argument("--max-size", type=int, default=None)
    compile_.add_argument("--max-sibling-replacements", type=int,
                          default=None, dest="max_sibling_replacements")
    compile_.add_argument("--out", required=True,
                          help="output rule-index JSON file")

    serve = commands.add_parser(
        "serve", help="serve a compiled rule index over TCP"
    )
    serve.add_argument("--index", required=True,
                       help="rule-index JSON file written by 'compile'")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7407)
    serve.add_argument("--cache-size", type=int, default=1024,
                       help="hot-basket LRU cache entries (0 disables)")
    serve.add_argument("--baskets", default=None,
                       help="basket file: enables on-demand selective "
                            "generation ('score --target')")
    serve.add_argument("--minsup", type=float, default=0.01,
                       help="selective generation support threshold")
    serve.add_argument("--minri", type=float, default=0.5,
                       help="selective generation interest threshold")
    serve.add_argument("--minconf", type=float, default=0.5)
    serve.add_argument("--engine", type=_engine_spec, default="bitmap",
                       metavar="SPEC",
                       help="counting engine for selective generation "
                            "(any registered spec)")
    serve.add_argument("--measure", type=_measure_spec, default="ri",
                       metavar="NAME",
                       help="interestingness measure for selective "
                            "generation (match the compiled index's)")
    serve.add_argument("--max-neighbors", type=int, default=32,
                       dest="max_neighbors",
                       help="selective neighborhood budget")

    score = commands.add_parser(
        "score", help="query a running rule server"
    )
    score.add_argument("--host", default="127.0.0.1")
    score.add_argument("--port", type=int, default=7407)
    group = score.add_mutually_exclusive_group(required=True)
    group.add_argument("--basket", default=None,
                       help="comma-separated item ids or names to score")
    group.add_argument("--target", default=None,
                       help="item id or name for on-target selective "
                            "mining")
    group.add_argument("--stats", action="store_true",
                       help="fetch server statistics")
    score.add_argument("--limit", type=int, default=None,
                       help="return at most this many matches "
                            "(strongest first)")
    score.add_argument("--timeout", type=float, default=10.0)

    watch = commands.add_parser(
        "watch",
        help="watch a growing basket file and push rule-index deltas",
    )
    _add_data_arguments(watch)
    watch.add_argument("--index", required=True,
                       help="rule-index JSON file: adopted as the "
                            "published base when it exists (e.g. from "
                            "'compile'), bootstrapped otherwise; "
                            "rewritten after every re-mine")
    watch.add_argument("--state", default=None,
                       help="checkpoint file for crash-restart "
                            "(default: <index>.state.json)")
    watch.add_argument("--retrigger", default="rows:500",
                       metavar="POLICY",
                       help="re-mine trigger: 'rows:<n>', "
                            "'fraction:<f>' or 'interval:<seconds>' "
                            "(default rows:500)")
    watch.add_argument("--serve-addr", default=None, metavar="HOST:PORT",
                       help="running 'repro serve' instance to push "
                            "deltas to (omit to only rewrite the index "
                            "file)")
    watch.add_argument("--poll-interval", type=float, default=2.0,
                       help="seconds between basket-file polls")
    watch.add_argument("--once", action="store_true",
                       help="one-shot mode: absorb pending appends, "
                            "re-mine if anything is pending (ignoring "
                            "the retrigger threshold), push, exit")
    watch.add_argument("--minsup", type=float, default=0.01)
    watch.add_argument("--minri", type=float, default=0.5)
    watch.add_argument("--minconf", type=float, default=0.5,
                       help="confidence threshold for the positive "
                            "rules compiled alongside the negatives")
    watch.add_argument("--engine", type=_engine_spec, default="bitmap",
                       metavar="SPEC",
                       help="counting engine for the incremental "
                            "re-mines ('cached'/'mmap' keep per-session "
                            "state that appends extend in place)")
    watch.add_argument("--measure", type=_measure_spec, default="ri",
                       metavar="NAME",
                       help="interestingness measure for the "
                            "incremental re-mines")
    watch.add_argument("--timeout", type=float, default=10.0,
                       help="delta push timeout (seconds)")
    return parser


def _add_data_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--baskets", required=True, help="basket file")
    parser.add_argument("--taxonomy", required=True, help="taxonomy file")


def _command_generate(args: argparse.Namespace) -> int:
    params: GeneratorParams = SHORT if args.preset == "short" else TALL
    if args.scale is not None:
        params = params.scaled(args.scale)
    updates = {}
    if args.transactions is not None:
        updates["num_transactions"] = args.transactions
    if args.items is not None:
        updates["num_items"] = args.items
    if updates:
        from dataclasses import replace

        params = replace(params, **updates)
    dataset = generate_dataset(params, seed=args.seed)
    save_basket_file(dataset.database, args.baskets)
    save_taxonomy_file(dataset.taxonomy, args.taxonomy)
    print(
        f"wrote {len(dataset.database)} transactions to {args.baskets} and "
        f"{len(dataset.taxonomy)} taxonomy nodes to {args.taxonomy}"
    )
    return 0


def _command_mine(args: argparse.Namespace) -> int:
    database = load_basket_file(args.baskets)
    taxonomy = load_taxonomy_file(args.taxonomy)
    config = MiningConfig(
        minsup=args.minsup,
        minri=args.minri,
        miner=args.miner,
        algorithm=args.algorithm,
        engine=args.engine,
        measure=args.measure,
        max_size=args.max_size,
        max_sibling_replacements=args.max_sibling_replacements,
        n_jobs=args.n_jobs,
        shard_rows=args.shard_rows,
        use_cache=args.use_cache,
        cache_bytes=args.cache_bytes,
        packed=args.packed,
        shm=args.shm,
        segment_rows=args.segment_rows,
        max_resident_bytes=args.max_resident_bytes,
        spill_dir=args.spill_dir,
        trace_path=args.trace_path,
        metrics=args.metrics,
    )
    result = mine_negative_rules(database, taxonomy, config=config)
    print(result.summary(taxonomy, limit=args.limit))
    comparison = None
    if args.agreement:
        from .measures.compare import compare_measures

        comparison = compare_measures(
            result, args.minsup, args.minri
        )
    if args.explain or args.agreement:
        for rule in result.rules[: args.limit]:
            print()
            print(
                explain_result_rule(
                    rule,
                    result.negative_itemsets,
                    result.large_itemsets,
                    taxonomy,
                    agreement=(
                        comparison.agreement_for(rule)
                        if comparison is not None
                        else None
                    ),
                )
            )
    return 0


def _command_positive(args: argparse.Namespace) -> int:
    database = load_basket_file(args.baskets)
    taxonomy = load_taxonomy_file(args.taxonomy)
    session = MiningSession(database, taxonomy, n_jobs=args.n_jobs)
    index = mine_generalized(
        database, taxonomy, args.minsup, algorithm=args.algorithm,
        session=session,
    )
    rules = generate_rules(index, args.minconf)
    print(f"large itemsets : {len(index)}")
    print(f"rules          : {len(rules)}")
    for rule in rules[: args.limit]:
        print("  " + rule.format(taxonomy.name_of))
    if len(rules) > args.limit:
        print(f"  ... and {len(rules) - args.limit} more")
    return 0


def _command_inspect(args: argparse.Namespace) -> int:
    database = load_basket_file(args.baskets)
    taxonomy = load_taxonomy_file(args.taxonomy)
    print(database)
    print(taxonomy)
    known = sum(1 for item in database.items if item in taxonomy)
    print(f"items covered by taxonomy: {known}/{len(database.items)}")
    return 0


def _command_analyze(args: argparse.Namespace) -> int:
    database = load_basket_file(args.baskets)
    taxonomy = load_taxonomy_file(args.taxonomy)
    print(format_profile(profile(taxonomy)))
    findings = granularity_report(
        taxonomy, coarse_fanout=args.coarse_fanout
    )
    if findings:
        print(f"coarse categories (fan-out >= {args.coarse_fanout}):")
        for finding in findings[:20]:
            print(
                f"  {taxonomy.name_of(finding.category)}: "
                f"{finding.fanout} children"
            )
    else:
        print(
            f"no category has fan-out >= {args.coarse_fanout} "
            "(fine-granularity taxonomy)"
        )
    counts = database.item_counts()
    scored = []
    for category in sorted(taxonomy.categories):
        if len(taxonomy.children(category)) >= 2:
            scored.append(
                (category_balance(taxonomy, counts, category), category)
            )
    scored.sort()
    if scored:
        print("least balanced categories (0 = one child dominates):")
        for balance, category in scored[:10]:
            print(f"  {taxonomy.name_of(category)}: {balance:.2f}")
    return 0


def _serving_engine_specs() -> str:
    """The engine specs ``repro serve --engine`` accepts, spelled out.

    Selective generation counts through the same registry as offline
    mining, so the supported set is every registered name plus the
    ``parallel:<serial>`` compositions.
    """
    specs = list(engine_names())
    specs.extend(
        f"parallel:{inner}" for inner in serial_engine_names()
        if inner != "parallel"
    )
    return ", ".join(f"`{spec}`" for spec in specs)


def _command_engines(args: argparse.Namespace) -> int:
    print(capability_table(markdown=args.markdown))
    if args.markdown:
        print()
        print(
            "Serving: `repro serve`'s on-target selective generation "
            "counts through the same registry — its `--engine` flag "
            f"supports {_serving_engine_specs()}."
        )
    else:
        print()
        print(
            "serving: 'repro serve' selective generation supports "
            + _serving_engine_specs().replace("`", "")
            + " via --engine"
        )
    return 0


def _command_measures(args: argparse.Namespace) -> int:
    print(measure_table(markdown=args.markdown))
    if args.markdown:
        print()
        print(
            "Serving: `repro serve`'s on-target selective generation "
            "judges rules through the same registry — any measure "
            "above is valid for its `--measure` flag."
        )
    else:
        print()
        print(
            "serving: 'repro serve' selective generation accepts any "
            "measure above via --measure"
        )
    return 0


def _command_compile(args: argparse.Namespace) -> int:
    database = load_basket_file(args.baskets)
    taxonomy = load_taxonomy_file(args.taxonomy)
    config = MiningConfig(
        minsup=args.minsup,
        minri=args.minri,
        engine=args.engine,
        measure=args.measure,
        max_size=args.max_size,
        max_sibling_replacements=args.max_sibling_replacements,
    )
    result = mine_negative_rules(database, taxonomy, config=config)
    positives = generate_rules(result.large_itemsets, args.minconf)
    index = RuleIndex(
        negative_rules=result.rules,
        positive_rules=positives,
        taxonomy=taxonomy,
        large_itemsets=result.large_itemsets,
        # A fresh compile starts a delta lineage; 'repro watch' bumps
        # the version with every pushed delta.
        version=1,
    )
    index.save(args.out)
    print(
        f"compiled {index.negative_count} negative + "
        f"{index.positive_count} positive rules to {args.out} "
        f"(index version {index.version})"
    )
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    index = RuleIndex.load(args.index)
    selective = None
    if args.baskets is not None:
        if index.taxonomy is None:
            print(
                "error: selective generation needs a taxonomy, but the "
                "index was compiled without one",
                file=sys.stderr,
            )
            return 2
        database = load_basket_file(args.baskets)
        session = MiningSession(
            database, index.taxonomy, engine=args.engine
        )
        selective = SelectiveContext(
            database=database,
            taxonomy=index.taxonomy,
            minsup=args.minsup,
            minri=args.minri,
            minconf=args.minconf,
            session=session,
            max_neighbors=args.max_neighbors,
            measure=args.measure,
        )
    service = RuleService(
        index, cache_size=args.cache_size, selective=selective
    )
    run_service(service, args.host, args.port)
    return 0


def _parse_basket_entry(entry: str) -> int | str:
    entry = entry.strip()
    try:
        return int(entry)
    except ValueError:
        return entry


def _command_score(args: argparse.Namespace) -> int:
    if args.stats:
        payload: dict = {"op": "stats"}
    elif args.target is not None:
        payload = {"op": "select",
                   "target": _parse_basket_entry(args.target)}
    else:
        payload = {
            "op": "score",
            "basket": [
                _parse_basket_entry(entry)
                for entry in args.basket.split(",")
                if entry.strip()
            ],
        }
        if args.limit is not None:
            payload["limit"] = args.limit
    try:
        response = request_once(
            args.host, args.port, payload, timeout=args.timeout
        )
    except OSError as error:
        print(
            f"error: cannot reach server at {args.host}:{args.port} "
            f"({error})",
            file=sys.stderr,
        )
        return 2
    print(json.dumps(response, indent=2, sort_keys=True))
    return 2 if "error" in response else 0


def _parse_serve_addr(value: str) -> tuple[str, int]:
    host, separator, port = value.rpartition(":")
    if not separator or not host:
        raise ReproError(
            f"--serve-addr must be HOST:PORT, got {value!r}"
        )
    try:
        return host, int(port)
    except ValueError as exc:
        raise ReproError(
            f"--serve-addr must be HOST:PORT, got {value!r}"
        ) from exc


def _command_watch(args: argparse.Namespace) -> int:
    database = FileBackedDatabase(args.baskets)
    taxonomy = load_taxonomy_file(args.taxonomy)
    config = MiningConfig(
        minsup=args.minsup,
        minri=args.minri,
        engine=args.engine,
        measure=args.measure,
    )
    push = None
    if args.serve_addr is not None:
        host, port = _parse_serve_addr(args.serve_addr)
        push = push_to_server(host, port, timeout=args.timeout)
    miner = StreamingMiner(
        database,
        taxonomy,
        config=config,
        policy=parse_policy(args.retrigger),
        minconf=args.minconf,
        index_path=args.index,
        state_path=args.state,
        push=push,
    )
    miner.start()
    if args.once:
        fired = miner.poll(ignore_policy=True)
        status = miner.status()
        print(
            f"{'re-mined' if fired else 'up to date'}: "
            f"index version {status['index_version']} "
            f"({status['rules']} rules), "
            f"rows {status['rows_published']}/{status['rows']}, "
            f"deltas pushed {status['deltas_pushed']}"
        )
        return 0
    status = miner.status()
    print(
        f"watching {args.baskets} (policy {status['policy']}, "
        f"index version {status['index_version']}, "
        f"{status['rows_published']} rows published)",
        flush=True,
    )
    miner.run(poll_interval=args.poll_interval)
    return 0


_COMMANDS = {
    "generate": _command_generate,
    "mine": _command_mine,
    "positive": _command_positive,
    "inspect": _command_inspect,
    "analyze": _command_analyze,
    "engines": _command_engines,
    "measures": _command_measures,
    "compile": _command_compile,
    "serve": _command_serve,
    "score": _command_score,
    "watch": _command_watch,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
