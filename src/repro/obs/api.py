"""Module-level observability state and the instrumentation API.

The whole subsystem hangs off one process-wide slot (``_STATE``).
When it is ``None`` — the default — observability is off and every
entry point degrades to a near-free no-op: :func:`span` returns the
shared :data:`~repro.obs.span.NULL_SPAN` singleton and :func:`incr`
returns after one ``is None`` test. Instrumented code therefore never
guards its own calls; the hot-path cost of disabled observability is a
couple of attribute lookups (pinned <2% by
``benchmarks/bench_obs_overhead.py`` and zero-allocation by
``tests/unit/test_obs.py``).

When enabled (:func:`configure` or the :func:`obs_session` context
manager), an :class:`Observability` instance holds:

- the :class:`~repro.obs.registry.MetricsRegistry` all metrics land in,
- the trace sinks finished spans are emitted to,
- the active-span stack (nesting depth + parent linkage), and
- a ``scope`` tag — ``"driver"`` in the main process, ``"worker"``
  inside pool workers — stamped on every span event.

Process boundaries: pool workers are forked and would inherit the
driver's state, including open sink file handles; ``pool._child``
calls :func:`detach` first. A worker that should measure opens a fresh
worker-scope collection with :func:`worker_collection` and ships the
resulting registry back for the driver to
:meth:`~repro.obs.registry.MetricsRegistry.merge`.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager

from ..errors import ConfigError
from .registry import MetricsRegistry
from .sinks import JsonlSink, SummarySink
from .span import NULL_SPAN, Span

#: Valid values for ``MiningConfig.metrics`` / ``--metrics``.
METRICS_MODES = ("none", "summary", "json")

_STATE: "Observability | None" = None


class Observability:
    """Live observability state: registry + sinks + span stack."""

    __slots__ = ("registry", "sinks", "scope", "_stack", "_pid", "_t0")

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        sinks: tuple = (),
        scope: str = "driver",
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sinks = tuple(sinks)
        self.scope = scope
        self._stack: list[Span] = []
        self._pid = os.getpid()
        self._t0 = time.perf_counter()

    # -- span lifecycle (called by Span.__enter__/__exit__) ------------
    def _push(self, span: Span) -> None:
        stack = self._stack
        span.depth = len(stack)
        span.parent = stack[-1].name if stack else None
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack
        if stack and stack[-1] is span:
            stack.pop()
        else:  # pragma: no cover - exit-out-of-order safety net
            try:
                stack.remove(span)
            except ValueError:
                pass
        self.registry.observe("span." + span.name, span.wall_s)
        if self.sinks:
            event = {
                "name": span.name,
                "parent": span.parent,
                "depth": span.depth,
                "start_s": round(span.start_s - self._t0, 9),
                "wall_s": round(span.wall_s, 9),
                "cpu_s": round(span.cpu_s, 9),
                "pid": self._pid,
                "scope": self.scope,
                "attrs": span.attrs,
            }
            for sink in self.sinks:
                sink.emit(event)

    def in_span(self, prefix: str) -> bool:
        """True when any active span's name starts with *prefix*."""
        return any(span.name.startswith(prefix) for span in self._stack)

    def finish(self) -> None:
        """Flush final metrics to every sink and close them."""
        for sink in self.sinks:
            sink.finish(self.registry)
        for sink in self.sinks:
            sink.close()


# ----------------------------------------------------------------------
# Module-level instrumentation API (what instrumented code calls)
# ----------------------------------------------------------------------
def configure(
    registry: MetricsRegistry | None = None,
    sinks: tuple = (),
    scope: str = "driver",
) -> Observability:
    """Install process-wide observability state and return it."""
    global _STATE
    _STATE = Observability(registry=registry, sinks=sinks, scope=scope)
    return _STATE


def shutdown() -> None:
    """Finish sinks and disable observability for this process."""
    global _STATE
    state = _STATE
    _STATE = None
    if state is not None:
        state.finish()


def detach() -> None:
    """Drop inherited state WITHOUT touching sinks (forked workers).

    A forked pool worker inherits the driver's ``_STATE`` — including
    open trace-file handles it must not write to or close. This resets
    the slot so the worker starts disabled; it may then open its own
    worker-scope collection via :func:`worker_collection`.
    """
    global _STATE
    _STATE = None


def current() -> Observability | None:
    """The active observability state, or None when disabled."""
    return _STATE


def enabled() -> bool:
    """Whether observability is currently on in this process."""
    return _STATE is not None


def span(name: str):
    """A context-managed span, or :data:`NULL_SPAN` when disabled."""
    state = _STATE
    if state is None:
        return NULL_SPAN
    return Span(name, state)


def incr(name: str, value: int = 1) -> None:
    """Increment counter *name* in the active registry (no-op if off)."""
    state = _STATE
    if state is not None:
        state.registry.incr(name, value)


def max_gauge(name: str, value: float) -> None:
    """High-water-mark gauge write into the active registry."""
    state = _STATE
    if state is not None:
        state.registry.max_gauge(name, value)


def observe(name: str, value: float) -> None:
    """Histogram observation into the active registry (no-op if off)."""
    state = _STATE
    if state is not None:
        state.registry.observe(name, value)


def active_registry() -> MetricsRegistry | None:
    """The active registry, or None when observability is off."""
    state = _STATE
    return state.registry if state is not None else None


def in_span(prefix: str) -> bool:
    """True when enabled AND inside a span whose name starts *prefix*."""
    state = _STATE
    return state is not None and state.in_span(prefix)


def merge_registry(other: MetricsRegistry | None) -> None:
    """Fold a worker-shipped registry into the active one (if any)."""
    state = _STATE
    if state is not None and other is not None:
        state.registry.merge(other)


# ----------------------------------------------------------------------
# Sessions
# ----------------------------------------------------------------------
def _build_sinks(trace_path: str | None, metrics: str, stream) -> tuple:
    if metrics not in METRICS_MODES:
        raise ConfigError(
            f"unknown metrics mode {metrics!r}; "
            f"choose from {METRICS_MODES}"
        )
    sinks: list = []
    if trace_path is not None:
        sinks.append(JsonlSink(trace_path))
    if metrics == "summary":
        sinks.append(SummarySink(stream=stream))
    elif metrics == "json":
        sinks.append(SummarySink(stream=stream, as_json=True))
    return tuple(sinks)


@contextmanager
def obs_session(
    trace_path: str | None = None,
    metrics: str = "none",
    stream=None,
    registry: MetricsRegistry | None = None,
):
    """Enable observability for a block; restore the prior state after.

    With neither a trace path nor a metrics mode (and no explicit
    registry) this is a transparent no-op — observability stays off and
    the disabled fast path keeps its near-zero cost. Otherwise the
    block runs with a fresh (or supplied) registry and the sinks
    implied by *trace_path*/*metrics*; on exit every sink receives the
    final registry (``finish``) and is closed, and the previously
    installed state (usually none) is restored.

    Yields the :class:`Observability` instance, or ``None`` when the
    session is a no-op.
    """
    global _STATE
    sinks = _build_sinks(trace_path, metrics, stream)
    if not sinks and registry is None:
        yield None
        return
    previous = _STATE
    state = Observability(registry=registry, sinks=sinks)
    _STATE = state
    try:
        yield state
    finally:
        _STATE = previous
        state.finish()


@contextmanager
def worker_collection(scope: str = "worker"):
    """Collect metrics in a fresh registry for a worker-side block.

    Installs sink-less observability under *scope*, yields the
    registry (for the worker to ship back to the driver), and restores
    whatever was installed before. Used by the shard-counting worker
    functions when the driver requested measurement.
    """
    global _STATE
    previous = _STATE
    state = Observability(scope=scope)
    _STATE = state
    try:
        yield state.registry
    finally:
        _STATE = previous
