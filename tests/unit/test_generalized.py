"""Unit tests for generalized mining (Basic / Cumulate / EstMerge)."""

import random

import pytest

from repro.core.session import MiningSession
from repro.data.database import TransactionDatabase
from repro.errors import ConfigError
from repro.mining.generalized import (
    contains_item_and_ancestor,
    extend_database,
    iter_generalized_levels,
    mine_generalized,
)
from repro.taxonomy.builders import taxonomy_from_parents


@pytest.fixture
def taxonomy():
    """clothes(0) -> outerwear(1) -> jackets(3), ski pants(4);
    clothes(0) -> shirts(2); footwear(5) -> shoes(6), boots(7)."""
    return taxonomy_from_parents(
        {1: 0, 2: 0, 3: 1, 4: 1, 6: 5, 7: 5}
    )


@pytest.fixture
def database():
    """The worked example of the Srikant-Agrawal generalized-rules paper."""
    return TransactionDatabase(
        [
            [2, 3],       # shirt, jacket
            [3],          # jacket
            [4],          # ski pants
            [6],          # shoes
            [7],          # boots
            [3, 7],       # jacket, boots
        ]
    )


class TestSupportSemantics:
    def test_category_accumulates_descendants(self, taxonomy, database):
        index = mine_generalized(database, taxonomy, minsup=1 / 6)
        # outerwear = jackets(3x) + ski pants(1x) = 4 transactions.
        assert index.support((1,)) == pytest.approx(4 / 6)
        # clothes = union of outerwear/shirt transactions; the shirt
        # co-occurs with a jacket, so still 4 distinct transactions.
        assert index.support((0,)) == pytest.approx(4 / 6)
        # footwear = shoes + boots = 3 transactions.
        assert index.support((5,)) == pytest.approx(3 / 6)

    def test_cross_level_itemset(self, taxonomy, database):
        index = mine_generalized(database, taxonomy, minsup=1 / 6)
        # {outerwear, footwear}: only transaction [jacket, boots].
        assert index.support((1, 5)) == pytest.approx(1 / 6)

    def test_cumulate_prunes_item_with_ancestor(self, taxonomy, database):
        index = mine_generalized(database, taxonomy, minsup=1 / 6,
                                 algorithm="cumulate")
        assert (1, 3) not in index  # jackets with its ancestor outerwear

    def test_basic_keeps_item_with_ancestor(self, taxonomy, database):
        index = mine_generalized(database, taxonomy, minsup=1 / 6,
                                 algorithm="basic")
        assert (1, 3) in index
        assert index.support((1, 3)) == index.support((3,))

    def test_minsup_filters(self, taxonomy, database):
        index = mine_generalized(database, taxonomy, minsup=0.5)
        assert (1,) in index   # outerwear 4/6
        assert (6,) not in index  # shoes 1/6


class TestAlgorithmEquivalence:
    @pytest.fixture
    def random_setup(self):
        rng = random.Random(5)
        taxonomy = taxonomy_from_parents(
            {child: (child - 1) // 3 for child in range(1, 40)}
        )
        leaves = sorted(taxonomy.leaves)
        rows = [
            rng.sample(leaves, rng.randint(1, 6)) for _ in range(300)
        ]
        return taxonomy, TransactionDatabase(rows)

    def test_basic_superset_of_cumulate(self, random_setup):
        taxonomy, database = random_setup
        basic = mine_generalized(database, taxonomy, 0.05,
                                 algorithm="basic")
        cumulate = mine_generalized(database, taxonomy, 0.05,
                                    algorithm="cumulate")
        for items, support in cumulate.items():
            assert basic.support(items) == pytest.approx(support)
        # Anything extra in basic must be an item+ancestor combination.
        extras = [
            items for items, _ in basic.items() if items not in cumulate
        ]
        assert all(
            contains_item_and_ancestor(items, taxonomy) for items in extras
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_estmerge_equals_cumulate(self, random_setup, seed):
        taxonomy, database = random_setup
        cumulate = mine_generalized(database, taxonomy, 0.05,
                                    algorithm="cumulate")
        estmerge = mine_generalized(
            database,
            taxonomy,
            0.05,
            algorithm="estmerge",
            rng=random.Random(seed),
        )
        assert estmerge == cumulate

    def test_engines_equivalent(self, random_setup):
        taxonomy, database = random_setup
        results = [
            mine_generalized(
                database,
                taxonomy,
                0.05,
                session=MiningSession(database, taxonomy, engine),
            )
            for engine in ("bitmap", "hashtree", "index", "brute")
        ]
        assert all(result == results[0] for result in results)


class TestIterLevels:
    def test_levels_partition_the_index(self, taxonomy, database):
        levels = list(
            iter_generalized_levels(database, taxonomy, 1 / 6)
        )
        merged = {
            items: support
            for level in levels
            for items, support in level.items()
        }
        index = mine_generalized(database, taxonomy, 1 / 6)
        assert merged == dict(index.items())

    def test_level_k_contains_size_k(self, taxonomy, database):
        for number, level in enumerate(
            iter_generalized_levels(database, taxonomy, 1 / 6), start=1
        ):
            assert all(len(items) == number for items in level)

    def test_one_pass_per_level(self, taxonomy, database):
        levels = list(iter_generalized_levels(database, taxonomy, 1 / 6))
        assert database.scans >= len(levels)


class TestExtendDatabase:
    def test_rows_gain_ancestors(self, taxonomy):
        database = TransactionDatabase([[3], [6, 7]])
        extended = extend_database(database, taxonomy)
        assert extended.transaction(0) == (0, 1, 3)
        assert extended.transaction(1) == (5, 6, 7)

    def test_counts_one_pass(self, taxonomy):
        database = TransactionDatabase([[3]])
        extend_database(database, taxonomy)
        assert database.scans == 1


class TestValidation:
    def test_unknown_algorithm(self, taxonomy, database):
        with pytest.raises(ConfigError, match="unknown algorithm"):
            mine_generalized(database, taxonomy, 0.5, algorithm="magic")

    def test_bad_minsup(self, taxonomy, database):
        with pytest.raises(ConfigError):
            mine_generalized(database, taxonomy, 0.0)

    def test_bad_estimation_slack(self, taxonomy, database):
        with pytest.raises(ConfigError, match="estimation_slack"):
            mine_generalized(
                database, taxonomy, 0.5, algorithm="estmerge",
                estimation_slack=0.0,
            )

    def test_max_size_respected(self, taxonomy, database):
        index = mine_generalized(database, taxonomy, 1 / 6, max_size=1)
        assert index.max_size == 1

    def test_contains_item_and_ancestor(self, taxonomy):
        assert contains_item_and_ancestor((0, 3), taxonomy)
        assert contains_item_and_ancestor((1, 3), taxonomy)
        assert not contains_item_and_ancestor((3, 4), taxonomy)
        assert not contains_item_and_ancestor((3, 6), taxonomy)
