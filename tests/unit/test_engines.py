"""Unit tests for the engine registry and the MiningSession lifecycle."""

import pytest

from repro.core.session import MiningSession
from repro.data.database import TransactionDatabase
from repro.errors import ConfigError
from repro.mining.engines import (
    DEFAULT_ENGINE,
    ENGINES,
    SERIAL_ENGINES,
    BitmapEngine,
    ParallelEngine,
    all_engine_specs,
    capability_table,
    create_engine,
    engine_names,
    parse_spec,
    registered_engines,
    validate_spec,
)
from repro.obs import api as obs
from repro.obs.api import obs_session

ROWS = [(1, 2, 3), (2, 3), (1, 3), (3,), (1, 2)]
CANDIDATES = [(1,), (2, 3), (1, 2, 3)]
EXPECTED = {(1,): 3, (2, 3): 2, (1, 2, 3): 1}


class TestRegistry:
    def test_builtin_engines_registered_in_order(self):
        assert engine_names() == (
            "bitmap", "hashtree", "index", "brute",
            "cached", "numpy", "mmap", "parallel", "parallel-shm",
        )
        assert ENGINES == engine_names()

    def test_default_engine_is_registered(self):
        assert DEFAULT_ENGINE in engine_names()

    def test_serial_engines_are_the_shardable_ones(self):
        classes = registered_engines()
        assert SERIAL_ENGINES == tuple(
            name
            for name in engine_names()
            if classes[name].capabilities.shardable
        )
        assert "parallel" not in SERIAL_ENGINES

    def test_all_engine_specs_cover_parallel_compositions(self):
        specs = all_engine_specs()
        for name in engine_names():
            assert name in specs
        for name in SERIAL_ENGINES:
            assert f"parallel:{name}" in specs

    def test_capability_table_lists_every_engine(self):
        text = capability_table()
        for name in engine_names():
            assert name in text
        assert "shardable" in text

    def test_capability_table_shows_shared_memory_flag(self):
        text = capability_table()
        assert "shared_memory" in text
        shm_row = next(
            line for line in text.splitlines()
            if line.startswith("parallel-shm")
        )
        assert "yes" in shm_row

    def test_capability_table_markdown(self):
        lines = capability_table(markdown=True).splitlines()
        assert lines[0].startswith("| engine |")
        assert set(lines[1]) <= {"|", "-"}
        assert len(lines) == 2 + len(engine_names())


class TestSpecParsing:
    def test_plain_name(self):
        assert parse_spec("bitmap") == ("bitmap", None)

    def test_composed_name(self):
        assert parse_spec("parallel:numpy") == ("parallel", "numpy")

    def test_unknown_name(self):
        with pytest.raises(ConfigError, match="unknown counting engine"):
            parse_spec("quantum")

    def test_unknown_inner(self):
        with pytest.raises(ConfigError, match="unknown counting engine"):
            parse_spec("parallel:quantum")

    def test_non_wrapper_rejects_inner(self):
        with pytest.raises(ConfigError, match="does not compose"):
            parse_spec("bitmap:numpy")

    def test_non_string_spec(self):
        with pytest.raises(ConfigError, match="must be a string"):
            parse_spec(42)

    def test_validate_spec_normalizes_instances(self):
        assert validate_spec("bitmap") == "bitmap"
        assert validate_spec(BitmapEngine()) == "bitmap"


class TestCreateEngine:
    def test_instance_passes_through(self):
        engine = BitmapEngine()
        assert create_engine(engine) is engine

    def test_serial_stays_serial_without_jobs(self):
        assert not create_engine("bitmap").wraps

    def test_n_jobs_auto_wraps_shardable_engines(self):
        session = MiningSession(ROWS, engine="bitmap", n_jobs=2)
        assert isinstance(session.engine, ParallelEngine)
        assert session.engine.inner.name == "bitmap"

    def test_explicit_composition(self):
        session = MiningSession(ROWS, engine="parallel:numpy", n_jobs=1)
        assert session.engine.wraps
        assert session.engine.inner.name == "numpy"
        assert session.engine.spec == "parallel:numpy"

    def test_parallel_shm_does_not_compose(self):
        with pytest.raises(ConfigError, match="does not compose"):
            parse_spec("parallel-shm:numpy")

    def test_parallel_shm_requires_numpy(self, monkeypatch):
        from repro.mining.engines import parallel as parallel_module

        monkeypatch.setattr(
            parallel_module, "_numpy_available", lambda: False
        )
        with pytest.raises(ConfigError, match="requires NumPy"):
            create_engine("parallel-shm")

    def test_shm_policy_upgrades_parallel_to_shm_engine(self):
        from repro.mining.engines import ParallelShmEngine

        session = MiningSession(
            ROWS, engine="numpy", n_jobs=2, shm=True
        )
        assert isinstance(session.engine, ParallelShmEngine)
        assert session.engine.spec == "parallel-shm"
        assert session.engine.n_jobs == 2
        session.engine.close()

    def test_shm_policy_keeps_an_shm_engine(self):
        from repro.mining.engines import ParallelShmEngine

        session = MiningSession(
            ROWS, engine="parallel-shm", n_jobs=1, shm=True
        )
        assert isinstance(session.engine, ParallelShmEngine)
        session.engine.close()

    def test_shm_policy_rejects_serial_configurations(self):
        with pytest.raises(ConfigError, match="shm=True requires"):
            MiningSession(ROWS, engine="bitmap", n_jobs=1, shm=True)


class TestSessionLifecycle:
    def test_state_prepared_once(self):
        database = TransactionDatabase(ROWS)
        session = MiningSession(database)
        assert session.count(CANDIDATES) == EXPECTED
        state = session._state
        assert state is not None
        assert session.count(CANDIDATES) == EXPECTED
        assert session._state is state

    def test_override_does_not_disturb_session_state(self):
        session = MiningSession(TransactionDatabase(ROWS))
        session.count(CANDIDATES)
        state = session._state
        other = session.count([(9,)], transactions=[(9,), (9, 1)])
        assert other == {(9,): 2}
        assert session._state is state

    def test_serial_unwraps_the_parallel_wrapper(self):
        session = MiningSession(ROWS, engine="parallel:bitmap", n_jobs=1)
        assert session.count(CANDIDATES, serial=True) == EXPECTED
        assert session.parallel_stats.shards == 0

    def test_begin_run_resets_accumulators(self):
        session = MiningSession(ROWS, engine="parallel:bitmap", n_jobs=1)
        session.count(CANDIDATES)
        assert session.parallel_stats.shards > 0
        session.begin_run()
        assert session.parallel_stats.shards == 0
        assert session.cache_stats.hits == 0

    def test_publish_run_merges_into_active_obs(self):
        from repro.core.negmining import MiningStats

        session = MiningSession(ROWS)
        stats = MiningStats()
        stats.data_passes = 3
        stats.large_itemsets = 7
        with obs_session(metrics="summary", stream=None):
            session.begin_run()
            session.count(CANDIDATES)
            session.publish_run(stats)
            registry = obs.current().registry
            assert registry.counter("mine.runs") == 1
            assert registry.counter("mine.data_passes") == 3
            assert registry.counter("mine.large_itemsets") == 7

    def test_publish_run_without_obs_is_a_noop(self):
        from repro.core.negmining import MiningStats

        assert obs.current() is None
        MiningSession(ROWS).publish_run(MiningStats())

    def test_repr_names_the_engine(self):
        text = repr(MiningSession(ROWS, engine="parallel:numpy", n_jobs=1))
        assert "parallel:numpy" in text
        assert "taxonomy=no" in text
