"""E8 — Vertical index cache: cached vs rebuild-per-pass vs hash tree.

Runs a full multi-level Cumulate mining sweep on the "Tall" dataset
(taxonomy height >= 3, so the descendant-OR path does real work) once per
counting engine and reports wall time, wall time per logical pass, peak
RSS and cache footprint. Four configurations:

``cached``
    The vertical index cache: one physical pass builds per-item bitmaps,
    every later pass intersects them (``engine="cached"``).
``rebuild``
    The same vertical counting but with the cache disabled
    (``use_cache=False``): the index is rebuilt on every pass — the
    baseline the cache amortizes away.
``bitmap``
    The default engine: per-pass candidate-restricted bitmaps over
    ancestor-extended rows.
``hashtree``
    The paper-faithful Apriori hash tree.

Folds its report into ``BENCH_counting.json`` next to the repo root
(override with ``--out``) under the ``"vertical_cache"`` key — or
``["quick"]["vertical_cache"]`` on ``--quick``, so a smoke run never
overwrites the committed full-size baseline — and exits non-zero when
the cached engine is not faster than the default engine, so CI catches
cache regressions.

Run::

    python -m benchmarks.bench_vertical_cache --quick
"""

from __future__ import annotations

import argparse
import os
import resource
import sys
import time
from pathlib import Path


def _run_engine(
    dataset, minsups, engine: str, use_cache: bool
) -> dict:
    """One full mining sweep; returns the measured point."""
    from repro.core.session import MiningSession
    from repro.mining import vertical
    from repro.mining.generalized import mine_generalized

    database = dataset.database
    database.reset_scans()
    vertical.invalidate(database)
    session = MiningSession(
        database, dataset.taxonomy, engine, use_cache=use_cache
    )
    start = time.perf_counter()
    large = 0
    for minsup in minsups:
        index = mine_generalized(
            database,
            dataset.taxonomy,
            minsup,
            session=session,
        )
        large += len(index)
    wall = time.perf_counter() - start
    cache_stats = session.cache_stats
    logical = database.logical_scans
    return {
        "engine": engine if use_cache else f"{engine}-rebuild",
        "wall_s": round(wall, 4),
        "logical_passes": logical,
        "physical_passes": database.scans,
        "wall_per_pass_s": round(wall / logical, 5) if logical else None,
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "cache_hits": cache_stats.hits,
        "cache_misses": cache_stats.misses,
        "cache_bytes": cache_stats.bytes,
        "large_itemsets": large,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small dataset / single support (the CI smoke configuration)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_counting.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--no-check",
        action="store_false",
        dest="check",
        help="report only; do not fail when cached is slower than default",
    )
    args = parser.parse_args(argv)

    # The shared dataset cache reads REPRO_BENCH_SCALE at import time, so
    # pick the size before importing benchmarks.common.
    os.environ.setdefault(
        "REPRO_BENCH_SCALE", "0.02" if args.quick else "0.1"
    )
    from benchmarks.common import dataset, fold_report, paper_row

    tall = dataset("tall")
    minsups = [0.10] if args.quick else [0.10, 0.08, 0.06]
    assert tall.taxonomy.height >= 3, "need a multi-level taxonomy"

    runs = [
        _run_engine(tall, minsups, "cached", True),
        _run_engine(tall, minsups, "cached", False),
        _run_engine(tall, minsups, "bitmap", True),
        _run_engine(tall, minsups, "hashtree", True),
    ]
    by_engine = {run["engine"]: run for run in runs}
    large_counts = {run["large_itemsets"] for run in runs}
    assert len(large_counts) == 1, f"engines disagree: {by_engine}"

    cached = by_engine["cached"]
    speedups = {
        f"vs_{name}": round(run["wall_s"] / cached["wall_s"], 2)
        for name, run in by_engine.items()
        if name != "cached"
    }
    report = {
        "benchmark": "vertical_cache",
        "dataset": "tall",
        "scale": os.environ["REPRO_BENCH_SCALE"],
        "minsups": minsups,
        "taxonomy_height": tall.taxonomy.height,
        "transactions": len(tall.database),
        "runs": runs,
        "speedup_of_cached": speedups,
    }
    fold_report(args.out, "vertical_cache", report, quick=args.quick)

    for run in runs:
        paper_row(
            run["engine"],
            wall_s=run["wall_s"],
            per_pass_s=run["wall_per_pass_s"],
            logical=run["logical_passes"],
            physical=run["physical_passes"],
            rss_kb=run["peak_rss_kb"],
            cache_bytes=run["cache_bytes"],
        )
    paper_row("speedup", **speedups)
    print(f"wrote {args.out}")

    if args.check and cached["wall_s"] >= by_engine["bitmap"]["wall_s"]:
        print(
            "FAIL: cached engine is not faster than the default engine",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
