"""The ``numpy`` engine: bit-packed vectorized counting.

The bitmap layout packed into ``uint64`` word arrays and counted in
vectorized batches (``np.bitwise_and.reduce`` + popcount; see
:mod:`repro.mining.bitpack` and DESIGN.md §7). Taxonomy candidates are
matched by descendant-OR instead of per-row ancestor extension, so —
like the cached engine — it ignores ``restrict_to_candidate_items`` and
tolerates transaction items unknown to the taxonomy. The fastest serial
engine per pass; still rebuilds its packed matrix every pass (the
``cached`` engine with ``packed=True`` amortizes that away).
"""

from __future__ import annotations

from collections.abc import Collection

from ...itemset import Itemset
from .. import bitpack
from .base import (
    Capabilities,
    CountingEngine,
    EnginePolicy,
    EngineState,
    register_engine,
)


@register_engine("numpy")
class NumpyEngine(CountingEngine):
    """One-shot bit-packed counting through the NumPy kernel."""

    capabilities = Capabilities(
        packed=True, shardable=True, needs_numpy=True
    )

    def __init__(self, batch_words: int | None = None) -> None:
        self.batch_words = batch_words

    @classmethod
    def from_policy(
        cls, policy: EnginePolicy, inner=None
    ) -> "NumpyEngine":
        cls._reject_inner(inner)
        return cls(batch_words=policy.batch_words)

    def count(
        self,
        state: EngineState,
        candidates: Collection[Itemset],
        *,
        restrict_to_candidate_items: bool = False,
        cache_stats=None,
        parallel_stats=None,
    ) -> dict[Itemset, int]:
        return bitpack.count_rows(
            state.rows(),
            candidates,
            taxonomy=state.taxonomy,
            batch_words=self.batch_words,
            stats=cache_stats,
        )
