"""Unit tests for expected-support computation (Cases 1-3)."""

import pytest

from repro.core.expectation import expected_support
from repro.errors import ConfigError


class TestExpectedSupport:
    def test_no_replacements_is_identity(self):
        assert expected_support(0.15, []) == pytest.approx(0.15)

    def test_case1_both_children_replaced(self):
        # E[sup(DJ)] = sup(CG) * sup(D)/sup(C) * sup(J)/sup(G)
        value = expected_support(0.15, [(0.05, 0.2), (0.1, 0.4)])
        assert value == pytest.approx(0.15 * (0.05 / 0.2) * (0.1 / 0.4))

    def test_case2_single_child_replaced(self):
        # E[sup(CJ)] = sup(CG) * sup(J)/sup(G)
        value = expected_support(0.15, [(0.1, 0.4)])
        assert value == pytest.approx(0.0375)

    def test_case3_sibling_replaced(self):
        # E[sup(CH)] = sup(CG) * sup(H)/sup(G)
        value = expected_support(0.2, [(0.3, 0.4)])
        assert value == pytest.approx(0.15)

    def test_order_of_replacements_irrelevant(self):
        pairs = [(0.1, 0.2), (0.3, 0.5), (0.2, 0.4)]
        assert expected_support(0.5, pairs) == pytest.approx(
            expected_support(0.5, list(reversed(pairs)))
        )

    def test_equal_ratio_keeps_base(self):
        assert expected_support(0.3, [(0.2, 0.2)]) == pytest.approx(0.3)

    def test_zero_new_support_gives_zero(self):
        assert expected_support(0.3, [(0.0, 0.5)]) == 0.0

    def test_formula_applied_to_table1_supports(self):
        # The Case-1 formula on Table 1 of the paper (fractions of 100k):
        # E[{Bryers, Perrier}] = 0.15 * (0.2/0.3) * (0.05/0.2) = 0.025 —
        # i.e. 2,500, not the published 4,000 (see DESIGN.md).
        value = expected_support(0.15, [(0.2, 0.3), (0.05, 0.2)])
        assert value == pytest.approx(0.025)

    def test_zero_old_support_rejected(self):
        with pytest.raises(ConfigError, match="replaced-item"):
            expected_support(0.3, [(0.2, 0.0)])

    def test_negative_base_rejected(self):
        with pytest.raises(ConfigError):
            expected_support(-0.1, [])

    def test_negative_new_support_rejected(self):
        with pytest.raises(ConfigError):
            expected_support(0.1, [(-0.2, 0.5)])
