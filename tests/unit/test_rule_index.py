"""Unit tests for the compiled serving rule index."""

import pytest

from repro.core.rulegen import NegativeRule
from repro.errors import ConfigError
from repro.mining.itemset_index import LargeItemsetIndex
from repro.mining.rules import AssociationRule
from repro.serve import RuleIndex
from repro.taxonomy.builders import taxonomy_from_nested


def negative(antecedent, consequent, ri=1.0):
    return NegativeRule(
        antecedent=tuple(antecedent),
        consequent=tuple(consequent),
        ri=ri,
        expected_support=0.3,
        actual_support=0.02,
        antecedent_support=0.4,
        consequent_support=0.4,
    )


def positive(antecedent, consequent, confidence=0.8, support=0.2):
    return AssociationRule(
        antecedent=tuple(antecedent),
        consequent=tuple(consequent),
        support=support,
        confidence=confidence,
    )


class TestCompilation:
    def test_slot_order_negatives_by_ri_then_positives(self):
        index = RuleIndex(
            negative_rules=[
                negative([1], [2], ri=0.5),
                negative([3], [4], ri=2.0),
            ],
            positive_rules=[
                positive([5], [6], confidence=0.6),
                positive([7], [8], confidence=0.9),
            ],
        )
        kinds = [entry.kind for entry in index.rules]
        assert kinds == ["negative", "negative", "positive", "positive"]
        assert index.rule(0).rule.ri == 2.0  # strongest negative first
        assert index.rule(2).rule.confidence == 0.9
        assert [entry.slot for entry in index.rules] == [0, 1, 2, 3]

    def test_postings_cover_antecedents_only(self):
        index = RuleIndex(
            negative_rules=[negative([1, 2], [3])],
        )
        assert index.postings(1) == (0,)
        assert index.postings(2) == (0,)
        assert index.postings(3) == ()  # consequents are not indexed
        assert index.postings(99) == ()

    def test_counts_and_len(self):
        index = RuleIndex(
            negative_rules=[negative([1], [2])],
            positive_rules=[positive([3], [4]), positive([5], [6])],
        )
        assert index.negative_count == 1
        assert index.positive_count == 2
        assert len(index) == 3

    def test_empty_antecedent_rejected(self):
        with pytest.raises(ConfigError):
            RuleIndex(negative_rules=[negative([], [1])])

    def test_empty_index_is_valid(self):
        index = RuleIndex()
        assert len(index) == 0
        assert index.postings(1) == ()


class TestPersistence:
    @pytest.fixture
    def taxonomy(self):
        return taxonomy_from_nested(
            {"drinks": {"soda": ["cola"], "water": ["still"]}}
        )

    def test_round_trip_preserves_everything(self, taxonomy):
        itemsets = LargeItemsetIndex({(1,): 0.5, (1, 2): 0.3})
        index = RuleIndex(
            negative_rules=[negative([1], [2])],
            positive_rules=[positive([2], [3])],
            taxonomy=taxonomy,
            large_itemsets=itemsets,
        )
        clone = RuleIndex.from_json(index.to_json())
        assert len(clone) == len(index)
        assert [e.rule for e in clone.rules] == [e.rule for e in index.rules]
        assert clone.taxonomy is not None
        assert clone.taxonomy.nodes == taxonomy.nodes
        assert clone.taxonomy.parent_map() == taxonomy.parent_map()
        assert clone.taxonomy.names_map() == taxonomy.names_map()
        assert clone.large_itemsets is not None
        assert clone.large_itemsets.support((1, 2)) == 0.3

    def test_round_trip_without_taxonomy(self):
        index = RuleIndex(negative_rules=[negative([1], [2])])
        clone = RuleIndex.from_json(index.to_json())
        assert clone.taxonomy is None
        assert clone.large_itemsets is None
        assert len(clone) == 1

    def test_save_load(self, tmp_path, taxonomy):
        path = tmp_path / "index.json"
        index = RuleIndex(
            negative_rules=[negative([1], [2])], taxonomy=taxonomy
        )
        index.save(path)
        clone = RuleIndex.load(path)
        assert len(clone) == 1
        assert clone.rule(0).rule == index.rule(0).rule

    def test_wrong_kind_rejected(self):
        index = RuleIndex(negative_rules=[negative([1], [2])])
        payload = index.to_payload()
        payload["kind"] = "itemset-index"
        with pytest.raises(ConfigError):
            RuleIndex.from_payload(payload)

    def test_wrong_schema_rejected(self):
        index = RuleIndex()
        payload = index.to_payload()
        payload["schema"] = 999
        with pytest.raises(ConfigError):
            RuleIndex.from_payload(payload)


class TestRuleDictRoundTrips:
    def test_negative_rule(self):
        rule = negative([1, 2], [3], ri=1.5)
        payload = rule.as_dict()
        assert payload["kind"] == "negative-rule"
        assert payload["schema"] == 1
        assert NegativeRule.from_dict(payload) == rule

    def test_positive_rule(self):
        rule = positive([1], [2, 3], confidence=0.75)
        payload = rule.as_dict()
        assert payload["kind"] == "positive-rule"
        assert payload["schema"] == 1
        assert AssociationRule.from_dict(payload) == rule

    def test_kinds_not_interchangeable(self):
        with pytest.raises(ConfigError):
            NegativeRule.from_dict(positive([1], [2]).as_dict())
