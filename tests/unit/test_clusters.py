"""Unit tests for the cluster/itemset consumer-choice model."""

import numpy as np
import pytest

from repro.errors import GenerationError
from repro.synthetic.clusters import (
    build_cluster_model,
    leaf_parent_categories,
)
from repro.synthetic.params import GeneratorParams
from repro.taxonomy.builders import taxonomy_from_parents
from repro.synthetic.taxonomy_gen import generate_taxonomy


@pytest.fixture
def params():
    return GeneratorParams(
        num_items=300,
        num_roots=5,
        fanout=5.0,
        num_clusters=40,
        avg_cluster_size=3.0,
        avg_itemset_size=4.0,
        avg_itemsets_per_cluster=2.0,
    )


@pytest.fixture
def taxonomy(params):
    return generate_taxonomy(params, np.random.default_rng(0))


class TestLeafParentCategories:
    def test_all_children_are_leaves(self, taxonomy):
        for category in leaf_parent_categories(taxonomy):
            assert all(
                taxonomy.is_leaf(child)
                for child in taxonomy.children(category)
            )

    def test_hand_built_example(self):
        # 0 -> (1, 2); 2 -> (3, 4): only 2 is a leaf-parent.
        taxonomy = taxonomy_from_parents({1: 0, 2: 0, 3: 2, 4: 2})
        assert leaf_parent_categories(taxonomy) == [2]


class TestBuildClusterModel:
    @pytest.fixture
    def model(self, taxonomy, params):
        return build_cluster_model(
            taxonomy, params, np.random.default_rng(1)
        )

    def test_cluster_count(self, model, params):
        assert len(model.clusters) == params.num_clusters

    def test_cluster_weights_normalized(self, model):
        assert sum(model.cluster_weights) == pytest.approx(1.0)
        assert all(weight > 0 for weight in model.cluster_weights)

    def test_itemset_weights_normalized(self, model):
        for cluster in model.clusters:
            assert sum(cluster.itemset_weights) == pytest.approx(1.0)

    def test_cluster_members_are_leaf_parents(self, model, taxonomy):
        eligible = set(leaf_parent_categories(taxonomy))
        for cluster in model.clusters:
            assert set(cluster.categories) <= eligible

    def test_itemsets_drawn_from_cluster_children(self, model, taxonomy):
        for cluster in model.clusters:
            pool = {
                child
                for category in cluster.categories
                for child in taxonomy.children(category)
            }
            for items in cluster.itemsets:
                assert set(items) <= pool

    def test_itemsets_are_leaf_items(self, model, taxonomy):
        for cluster in model.clusters:
            for items in cluster.itemsets:
                assert all(taxonomy.is_leaf(item) for item in items)

    def test_corruption_levels_clamped(self, model):
        for cluster in model.clusters:
            assert all(
                0.0 <= level <= 1.0 for level in cluster.corruption_levels
            )
            assert len(cluster.corruption_levels) == len(cluster.itemsets)

    def test_deterministic_with_seed(self, taxonomy, params):
        first = build_cluster_model(
            taxonomy, params, np.random.default_rng(9)
        )
        second = build_cluster_model(
            taxonomy, params, np.random.default_rng(9)
        )
        assert first == second

    def test_no_leaf_parents_raises(self, params):
        flat = taxonomy_from_parents({}, extra_roots=range(20))
        with pytest.raises(GenerationError, match="no categories"):
            build_cluster_model(flat, params, np.random.default_rng(0))
