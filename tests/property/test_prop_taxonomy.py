"""Property-based tests for taxonomy invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.taxonomy.prune import restrict_to_items
from repro.taxonomy.tree import Taxonomy


@st.composite
def taxonomies(draw):
    """Random forests built by attaching each node to an earlier one."""
    size = draw(st.integers(min_value=1, max_value=30))
    parents = {}
    for node in range(1, size):
        if draw(st.booleans()):
            parents[node] = draw(
                st.integers(min_value=0, max_value=node - 1)
            )
    roots = [node for node in range(size) if node not in parents]
    return Taxonomy(parents, extra_roots=roots)


@settings(max_examples=60, deadline=None)
@given(taxonomies())
def test_leaves_and_categories_partition_nodes(taxonomy):
    leaves = taxonomy.leaves
    categories = taxonomy.categories
    assert leaves | categories == set(taxonomy.nodes)
    assert not leaves & categories


@settings(max_examples=60, deadline=None)
@given(taxonomies())
def test_parent_child_consistency(taxonomy):
    for node in taxonomy.nodes:
        for child in taxonomy.children(node):
            assert taxonomy.parent(child) == node
        parent = taxonomy.parent(node)
        if parent is not None:
            assert node in taxonomy.children(parent)


@settings(max_examples=60, deadline=None)
@given(taxonomies())
def test_sibling_symmetry(taxonomy):
    for node in taxonomy.nodes:
        for sibling in taxonomy.siblings(node):
            assert node in taxonomy.siblings(sibling)
            assert taxonomy.parent(sibling) == taxonomy.parent(node)


@settings(max_examples=60, deadline=None)
@given(taxonomies())
def test_ancestor_chain_matches_depth(taxonomy):
    for node in taxonomy.nodes:
        chain = taxonomy.ancestors(node)
        assert len(chain) == taxonomy.depth(node)
        # Chain is nearest-first and strictly ascending in depth terms.
        for position, ancestor in enumerate(chain):
            assert taxonomy.depth(ancestor) == taxonomy.depth(node) - (
                position + 1
            )


@settings(max_examples=60, deadline=None)
@given(taxonomies())
def test_closure_is_idempotent_and_monotone(taxonomy):
    nodes = list(taxonomy.nodes)
    closed = taxonomy.ancestor_closure(nodes[: max(1, len(nodes) // 2)])
    assert taxonomy.ancestor_closure(closed) == closed


@settings(max_examples=60, deadline=None)
@given(taxonomies(), st.data())
def test_restrict_preserves_relations_among_kept(taxonomy, data):
    keep = data.draw(
        st.sets(st.sampled_from(list(taxonomy.nodes)))
        if taxonomy.nodes
        else st.just(set())
    )
    pruned = restrict_to_items(taxonomy, keep)
    assert set(pruned.nodes) == set(keep)
    for node in keep:
        parent = taxonomy.parent(node)
        if parent in keep:
            assert pruned.parent(node) == parent
        else:
            assert pruned.parent(node) is None


@settings(max_examples=60, deadline=None)
@given(taxonomies())
def test_leaf_descendants_are_leaves_below(taxonomy):
    for node in taxonomy.nodes:
        for leaf in taxonomy.leaf_descendants(node):
            assert taxonomy.is_leaf(leaf)
            assert leaf == node or taxonomy.is_ancestor(node, leaf)
