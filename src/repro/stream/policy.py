"""Retrigger policies: when does the streaming watcher re-mine?

A growing basket file does not warrant a re-mine per appended row —
mining cost is per *run*, so the watcher batches appends and fires when
a :class:`RetriggerPolicy` says the pending backlog is worth a run.
Three built-in policies cover the useful axes:

:class:`RowCountPolicy` (``rows:500``)
    Fire once at least N rows are pending. The right default when
    append traffic is steady and rule freshness is measured in rows.
:class:`FractionPolicy` (``fraction:0.01``)
    Fire once the pending rows exceed a fraction of |D|. Scale-free:
    the same policy keeps re-mine *relative* cost constant as the
    database grows (appending 1 % of |D| is O(append) on the
    incremental substrate regardless of |D|).
:class:`IntervalPolicy` (``interval:30``)
    Fire when any rows are pending and the last re-mine is older than
    the interval — a freshness SLO rather than a volume trigger.

Policies are deliberately tiny state machines: :meth:`should_fire` is
consulted on every poll with the current backlog, and :meth:`reset` is
called after each re-mine. :func:`parse_policy` turns the CLI's
``kind:value`` spellings into instances.
"""

from __future__ import annotations

import time

from ..errors import StreamError


class RetriggerPolicy:
    """Decides, per poll, whether the pending backlog triggers a re-mine.

    Subclasses implement :meth:`should_fire`; :meth:`reset` is a no-op
    unless the policy keeps clock state.
    """

    def should_fire(self, pending_rows: int, total_rows: int) -> bool:
        """Whether the watcher should re-mine now.

        Parameters
        ----------
        pending_rows:
            Appended rows absorbed since the last published re-mine.
        total_rows:
            Current |D| (including the pending rows).
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Called after every re-mine; clock-based policies re-arm here."""

    @property
    def spec(self) -> str:
        """The ``kind:value`` spelling that parses back to this policy."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.spec!r})"


class RowCountPolicy(RetriggerPolicy):
    """Fire once at least *rows* appended rows are pending."""

    def __init__(self, rows: int) -> None:
        if rows < 1:
            raise StreamError(
                f"rows retrigger threshold must be >= 1, got {rows}"
            )
        self.rows = rows

    def should_fire(self, pending_rows: int, total_rows: int) -> bool:
        return pending_rows >= self.rows

    @property
    def spec(self) -> str:
        return f"rows:{self.rows}"


class FractionPolicy(RetriggerPolicy):
    """Fire once pending rows exceed *fraction* of the current |D|."""

    def __init__(self, fraction: float) -> None:
        if not 0.0 < fraction <= 1.0:
            raise StreamError(
                f"fraction retrigger threshold must be in (0, 1], "
                f"got {fraction}"
            )
        self.fraction = fraction

    def should_fire(self, pending_rows: int, total_rows: int) -> bool:
        if total_rows <= 0:
            return False
        return pending_rows >= self.fraction * total_rows

    @property
    def spec(self) -> str:
        return f"fraction:{self.fraction:g}"


class IntervalPolicy(RetriggerPolicy):
    """Fire when rows are pending and *seconds* passed since the last run.

    The clock starts at construction (or the last :meth:`reset`), so a
    freshly started watcher waits a full interval before its first
    triggered re-mine. A monotonic clock source can be injected for
    tests.
    """

    def __init__(self, seconds: float, clock=time.monotonic) -> None:
        if seconds <= 0:
            raise StreamError(
                f"interval retrigger threshold must be > 0 seconds, "
                f"got {seconds}"
            )
        self.seconds = seconds
        self._clock = clock
        self._armed_at = clock()

    def should_fire(self, pending_rows: int, total_rows: int) -> bool:
        if pending_rows <= 0:
            return False
        return self._clock() - self._armed_at >= self.seconds

    def reset(self) -> None:
        self._armed_at = self._clock()

    @property
    def spec(self) -> str:
        return f"interval:{self.seconds:g}"


_POLICY_KINDS = ("rows", "fraction", "interval")


def parse_policy(spec: str) -> RetriggerPolicy:
    """Build a policy from a ``kind:value`` spelling.

    ``rows:500`` fires every 500 appended rows, ``fraction:0.01`` every
    1 % of |D|, ``interval:30`` at most every 30 seconds (when anything
    is pending). Anything else raises :class:`~repro.errors.StreamError`
    with the valid kinds.
    """
    kind, separator, raw = spec.partition(":")
    if not separator or kind not in _POLICY_KINDS:
        raise StreamError(
            f"unknown retrigger policy {spec!r}; expected "
            f"'rows:<n>', 'fraction:<f>' or 'interval:<seconds>'"
        )
    try:
        if kind == "rows":
            return RowCountPolicy(int(raw))
        if kind == "fraction":
            return FractionPolicy(float(raw))
        return IntervalPolicy(float(raw))
    except ValueError as exc:
        raise StreamError(
            f"malformed retrigger policy value in {spec!r}: {exc}"
        ) from exc
