"""Unit tests for the persistent vertical bitmap index cache."""

import pickle

import pytest

from repro.data.database import TransactionDatabase
from repro.data.filedb import FileBackedDatabase
from repro.errors import DatabaseError
from repro.mining import vertical
from repro.core.session import MiningSession
from repro.mining.vertical import CacheStats, VerticalIndex
from repro.taxonomy.builders import taxonomy_from_parents

ROWS = [(1, 2, 3), (1, 3), (2, 4), (1, 2, 4), (3, 4), (1, 2, 3, 4)]
CANDIDATES = [(1,), (2,), (1, 2), (3, 4), (1, 2, 3), (9,)]

# Two-level taxonomy: categories 100..101 over leaves 1..4.
TAXONOMY = taxonomy_from_parents({1: 100, 2: 100, 3: 101, 4: 101})


def brute(rows, candidates, taxonomy=None):
    return MiningSession(list(rows), taxonomy, "brute").count(candidates)


class TestVerticalIndex:
    def test_counts_match_brute(self):
        database = TransactionDatabase(ROWS)
        index = VerticalIndex.build(database)
        assert index.count(CANDIDATES) == brute(ROWS, CANDIDATES)

    def test_generalized_counts_match_brute(self):
        database = TransactionDatabase(ROWS)
        index = VerticalIndex.build(database)
        candidates = [(100,), (101,), (100, 101), (1, 101), (100, 3, 4)]
        assert index.count(candidates, taxonomy=TAXONOMY) == brute(
            ROWS, candidates, taxonomy=TAXONOMY
        )

    def test_from_rows_counts_match_brute(self):
        index = VerticalIndex.from_rows(ROWS)
        assert index.count(CANDIDATES) == brute(ROWS, CANDIDATES)

    def test_build_is_one_physical_zero_logical_pass(self):
        database = TransactionDatabase(ROWS)
        VerticalIndex.build(database)
        assert database.scans == 1
        assert database.logical_scans == 0

    def test_pickle_roundtrip_preserves_counts(self):
        index = VerticalIndex.from_rows(ROWS)
        clone = pickle.loads(pickle.dumps(index))
        assert clone.n_rows == index.n_rows
        assert clone.count(CANDIDATES) == index.count(CANDIDATES)

    def test_budget_evicts_lru_and_restores_on_demand(self):
        database = TransactionDatabase(ROWS)
        index = VerticalIndex.build(database, budget_bytes=1)
        assert index.evictions > 0
        stats = CacheStats()
        # Every count must still be exact: evicted bitmaps are restored
        # by a targeted physical pass, never guessed.
        assert index.count(CANDIDATES, stats=stats) == brute(ROWS, CANDIDATES)
        assert stats.rebuilt_items > 0

    def test_evicted_without_source_raises(self):
        database = TransactionDatabase(ROWS)
        index = VerticalIndex.build(database, budget_bytes=1)
        index._source = None
        with pytest.raises(DatabaseError):
            index.count(CANDIDATES)

    def test_budget_must_be_positive(self):
        database = TransactionDatabase(ROWS)
        with pytest.raises(Exception):
            VerticalIndex.build(database, budget_bytes=0)


class TestGetIndex:
    def test_second_call_hits_cache(self):
        database = TransactionDatabase(ROWS)
        stats = CacheStats()
        first = vertical.get_index(database, stats=stats)
        second = vertical.get_index(database, stats=stats)
        assert first is second
        assert (stats.hits, stats.misses) == (1, 1)
        assert database.scans == 1

    def test_use_cache_false_rebuilds_every_call(self):
        database = TransactionDatabase(ROWS)
        stats = CacheStats()
        first = vertical.get_index(database, use_cache=False, stats=stats)
        second = vertical.get_index(database, use_cache=False, stats=stats)
        assert first is not second
        assert stats.misses == 2
        assert getattr(database, "_vertical_index", None) is None

    def test_mutated_database_invalidates(self):
        database = TransactionDatabase(ROWS)
        stats = CacheStats()
        vertical.get_index(database, stats=stats)
        new_rows = ((5, 6), (5,), (6,))
        database._transactions = new_rows
        index = vertical.get_index(database, stats=stats)
        assert stats.invalidations == 1
        assert index.count([(5,), (6,), (5, 6)]) == brute(
            new_rows, [(5,), (6,), (5, 6)]
        )

    def test_invalidate_helper_drops_caches(self):
        database = TransactionDatabase(ROWS)
        vertical.get_index(database)
        vertical.get_shard_indexes(database, n_shards=2)
        vertical.invalidate(database)
        assert database._vertical_index is None
        assert database._shard_cache is None


class TestFileBackedInvalidation:
    def test_rewritten_file_invalidates(self, tmp_path):
        path = tmp_path / "baskets.txt"
        path.write_text("1 2\n2 3\n")
        database = FileBackedDatabase(path)
        session = MiningSession(database, engine="cached")
        assert session.count([(1,), (2,)]) == {(1,): 1, (2,): 2}
        path.write_text("1 2\n1 3\n1 4\n")
        assert session.count([(1,), (2,)]) == {(1,): 3, (2,): 1}
        assert session.cache_stats.invalidations == 1

    def test_cache_token_requires_existing_file(self, tmp_path):
        path = tmp_path / "baskets.txt"
        path.write_text("1 2\n")
        database = FileBackedDatabase(path)
        path.unlink()
        with pytest.raises(DatabaseError):
            database.cache_token()


class TestCachedEngine:
    def test_plain_rows_one_shot(self):
        session = MiningSession(list(ROWS), engine="cached")
        assert session.count(CANDIDATES) == brute(ROWS, CANDIDATES)
        assert session.cache_stats.misses == 1

    def test_database_pass_accounting(self):
        database = TransactionDatabase(ROWS)
        session = MiningSession(database, engine="cached")
        for _ in range(3):
            session.count(CANDIDATES)
        assert database.scans == 1
        assert database.logical_scans == 3

    def test_empty_candidates_touch_nothing(self):
        database = TransactionDatabase(ROWS)
        assert MiningSession(database, engine="cached").count([]) == {}
        assert database.scans == 0
        assert database.logical_scans == 0

    def test_cache_bytes_budget_stays_exact(self):
        database = TransactionDatabase(ROWS)
        session = MiningSession(database, engine="cached", cache_bytes=1)
        for _ in range(2):
            assert session.count(CANDIDATES) == brute(ROWS, CANDIDATES)
        assert session.cache_stats.evictions > 0
        assert session.cache_stats.rebuilt_items > 0


class TestShardIndexes:
    def test_layout_reuse_and_change(self):
        database = TransactionDatabase(ROWS)
        stats = CacheStats()
        first = vertical.get_shard_indexes(
            database, n_shards=2, stats=stats
        )
        again = vertical.get_shard_indexes(
            database, n_shards=2, stats=stats
        )
        assert first is again
        assert (stats.hits, stats.misses) == (1, 1)
        other = vertical.get_shard_indexes(
            database, n_shards=3, stats=stats
        )
        assert other is not first
        assert stats.invalidations == 1

    def test_shard_counts_sum_to_serial(self):
        database = TransactionDatabase(ROWS)
        indexes = vertical.get_shard_indexes(database, n_shards=3)
        totals = dict.fromkeys(CANDIDATES, 0)
        for index in indexes:
            for items, count in index.count(CANDIDATES).items():
                totals[items] += count
        assert totals == brute(ROWS, CANDIDATES)


class TestPackedBackend:
    def test_counts_match_bigint(self):
        bigint = VerticalIndex.from_rows(ROWS)
        packed = VerticalIndex.from_rows(ROWS, packed=True)
        assert packed.packed and not bigint.packed
        assert packed.count(CANDIDATES) == bigint.count(CANDIDATES)

    def test_generalized_counts_match_bigint(self):
        bigint = VerticalIndex.from_rows(ROWS)
        packed = VerticalIndex.from_rows(ROWS, packed=True)
        candidates = [(100,), (101,), (100, 101), (1, 101), (100, 3, 4)]
        assert packed.count(candidates, taxonomy=TAXONOMY) == bigint.count(
            candidates, taxonomy=TAXONOMY
        )

    def test_pickle_roundtrip_preserves_backend(self):
        packed = VerticalIndex.from_rows(ROWS, packed=True)
        clone = pickle.loads(pickle.dumps(packed))
        assert clone.packed
        assert clone.count(CANDIDATES) == brute(ROWS, CANDIDATES)

    def test_budget_evicts_and_restores_packed_rows(self):
        database = TransactionDatabase(ROWS)
        index = VerticalIndex.build(database, budget_bytes=1, packed=True)
        assert index.evictions > 0
        stats = CacheStats()
        assert index.count(CANDIDATES, stats=stats) == brute(ROWS, CANDIDATES)
        assert stats.rebuilt_items > 0

    def test_kernel_batches_recorded(self):
        packed = VerticalIndex.from_rows(ROWS, packed=True)
        stats = CacheStats()
        packed.count(CANDIDATES, stats=stats, batch_words=1)
        assert stats.kernel_batches == len(CANDIDATES)
        bigint = VerticalIndex.from_rows(ROWS)
        idle = CacheStats()
        bigint.count(CANDIDATES, stats=idle)
        assert idle.kernel_batches == 0

    def test_get_index_backend_mismatch_rebuilds(self):
        database = TransactionDatabase(ROWS)
        stats = CacheStats()
        bigint = vertical.get_index(database, stats=stats)
        packed = vertical.get_index(database, packed=True, stats=stats)
        assert packed is not bigint
        assert packed.packed
        # A backend switch is a rebuild (a miss), not data invalidation.
        assert stats.invalidations == 0
        assert stats.misses == 2
        again = vertical.get_index(database, packed=True, stats=stats)
        assert again is packed

    def test_shard_indexes_packed_layout(self):
        database = TransactionDatabase(ROWS)
        indexes = vertical.get_shard_indexes(
            database, n_shards=3, packed=True
        )
        assert all(index.packed for index in indexes)
        totals = dict.fromkeys(CANDIDATES, 0)
        for index in indexes:
            for items, count in index.count(CANDIDATES).items():
                totals[items] += count
        assert totals == brute(ROWS, CANDIDATES)

    def test_packed_engine_repr(self):
        packed = VerticalIndex.from_rows(ROWS, packed=True)
        assert "packed" in repr(packed)


class TestCacheStats:
    def test_hit_rate(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.hit_rate == 0.75

    def test_hit_rate_no_lookups(self):
        assert CacheStats().hit_rate == 0.0
