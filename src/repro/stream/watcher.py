"""The streaming watcher: re-mine appends, push deltas, survive crashes.

:class:`StreamingMiner` is the long-running loop that composes the
incremental counting substrate (PR 8), the miners, and the serving
layer into one subsystem:

1. **Poll.** Each :meth:`poll` absorbs on-disk growth of the basket
   file through :meth:`~repro.data.filedb.FileBackedDatabase.
   absorb_appends` — complete appended lines become rows (O(append),
   partial trailing lines wait for the writer), foreign rewrites become
   full invalidations.
2. **Retrigger.** A pluggable :class:`~repro.stream.policy.
   RetriggerPolicy` decides when the pending backlog is worth a re-mine
   (row count, fraction of |D|, or wall-clock interval).
3. **Re-mine.** The re-mine runs on one persistent
   :class:`~repro.core.session.MiningSession` (run kind
   ``"streaming"``), so the engine's prepared state — vertical index
   bitmaps, packed segments — is *extended* by the appended rows rather
   than rebuilt; cost stays proportional to the append, not to |D|.
4. **Diff & push.** The fresh rule set is diffed against the previously
   published index into a versioned
   :class:`~repro.stream.delta.RuleIndexDelta` and pushed to the live
   server (``op: reload_delta``); only after the server accepts does
   the watcher install the new index locally and persist it.
5. **Checkpoint.** A small ``stream-checkpoint`` JSON file records the
   published row count and index version next to the index file. A
   restarted watcher resumes from it — already-seen rows are never
   re-mined — and a corrupt or skewed checkpoint is discarded (the
   watcher falls back to re-mining everything once, which is slow but
   always correct).

Failure modes are handled where they occur: partial appends stay
unconsumed at the file layer, a rejected push (version skew, server
error) raises :class:`~repro.errors.StreamError` *before* the watcher
advances its own state, and crash-restart is just :meth:`start` reading
the checkpoint back.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from ..core.api import MiningConfig, mine_negative_rules
from ..core.session import MiningSession
from ..data.filedb import FileBackedDatabase
from ..errors import ReproError, StreamError
from ..mining.rules import generate_rules
from ..obs import api as obs
from ..serialize import check_payload, header
from ..serve.rule_index import RuleIndex
from ..taxonomy.tree import Taxonomy
from .delta import RuleIndexDelta
from .policy import RetriggerPolicy, RowCountPolicy


def _load_checkpoint(path: Path) -> dict | None:
    """The checkpoint payload at *path*, or ``None`` when unusable.

    A checkpoint is advisory — it only ever saves work — so any
    corruption (missing file, bad JSON, wrong kind, missing fields)
    degrades to "no checkpoint" instead of failing the watcher.
    """
    try:
        payload = json.loads(path.read_text())
        check_payload(payload, "stream-checkpoint")
        rows = payload["rows"]
        version = payload["index_version"]
    except (OSError, ValueError, KeyError, TypeError, ReproError):
        return None
    if not isinstance(rows, int) or not isinstance(version, int):
        return None
    return payload


class StreamingMiner:
    """A watcher binding one basket file to one served rule lineage.

    Parameters
    ----------
    database:
        The live basket log as a
        :class:`~repro.data.filedb.FileBackedDatabase`.
    taxonomy:
        The taxonomy rules are mined and compiled under.
    config:
        Mining thresholds and engine for every re-mine (defaults to
        :class:`~repro.core.api.MiningConfig` defaults).
    policy:
        The retrigger policy (default: ``rows:500``).
    minconf:
        Confidence threshold for the positive rules compiled alongside
        the negatives (mirrors ``repro compile --minconf``).
    index_path:
        Where the published index is persisted after every re-mine;
        also the bootstrap source — an existing file is adopted as the
        published base instead of mining from scratch.
    state_path:
        The checkpoint file (default: ``<index_path>.state.json``).
    push:
        ``callable(delta) -> response dict`` delivering each delta to
        the live server; see :mod:`repro.stream.push`. ``None`` keeps
        the watcher file-only.
    session:
        An existing :class:`~repro.core.session.MiningSession` bound to
        *database* (tests/benchmarks); by default the watcher builds
        its own with run kind ``"streaming"``.
    """

    def __init__(
        self,
        database: FileBackedDatabase,
        taxonomy: Taxonomy,
        config: MiningConfig | None = None,
        policy: RetriggerPolicy | None = None,
        *,
        minconf: float = 0.5,
        index_path: str | os.PathLike | None = None,
        state_path: str | os.PathLike | None = None,
        push=None,
        session: MiningSession | None = None,
    ) -> None:
        self.database = database
        self.taxonomy = taxonomy
        self.config = config if config is not None else MiningConfig()
        self.policy = policy if policy is not None else RowCountPolicy(500)
        self.minconf = minconf
        self.index_path = Path(index_path) if index_path else None
        if state_path is not None:
            self.state_path: Path | None = Path(state_path)
        elif self.index_path is not None:
            self.state_path = self.index_path.with_name(
                self.index_path.name + ".state.json"
            )
        else:
            self.state_path = None
        self.push = push
        self.session = session or MiningSession.from_config(
            database, taxonomy, self.config,
            default_run_kind="streaming",
        )
        self.index: RuleIndex | None = None
        self.rows_published = 0
        self.remines = 0
        self.deltas_pushed = 0
        self._force = False
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "StreamingMiner":
        """Bootstrap or resume the published lineage.

        * Index file + matching checkpoint → **resume**: the published
          index and row watermark come back exactly as the crashed (or
          stopped) watcher left them; rows the checkpoint covers are
          never re-mined.
        * Index file, but no usable checkpoint (or one whose version /
          basket path disagrees) → **adopt**: the index becomes the
          published base, but its row coverage is unknown, so the whole
          file counts as pending and the first fire re-mines everything
          once before delta flow begins.
        * No index file → **bootstrap**: mine now, publish version 1.
        """
        if self._started:
            return self
        if self.index_path is not None and self.index_path.exists():
            self.index = RuleIndex.load(self.index_path)
            state = (
                _load_checkpoint(self.state_path)
                if self.state_path is not None and self.state_path.exists()
                else None
            )
            if state is not None and (
                state["index_version"] == self.index.version
                and state.get("basket") == str(self.database.path)
                and 0 <= state["rows"] <= len(self.database)
            ):
                self.rows_published = state["rows"]
                obs.incr("stream.restart.resumed")
            else:
                if state is not None or (
                    self.state_path is not None
                    and self.state_path.exists()
                ):
                    obs.incr("stream.restart.state_discarded")
                self.rows_published = 0
        self._started = True
        if self.index is None:
            self.remine()
        return self

    @property
    def pending_rows(self) -> int:
        """Absorbed rows not yet covered by the published index."""
        return len(self.database) - self.rows_published

    # ------------------------------------------------------------------
    # The poll loop
    # ------------------------------------------------------------------
    def poll(self, ignore_policy: bool = False) -> bool:
        """One watcher tick; returns whether a re-mine fired.

        Absorbs any on-disk growth, then consults the retrigger policy
        (*ignore_policy* fires on any backlog — the CLI's one-shot
        mode). A foreign rewrite of the basket file resets the row
        watermark and forces a re-mine regardless of policy: the
        published rules may describe data that no longer exists.
        """
        if not self._started:
            raise StreamError("StreamingMiner.poll() before start()")
        obs.incr("stream.retrigger.polls")
        absorbed, rewritten = self.database.absorb_appends()
        if absorbed:
            obs.incr("stream.retrigger.rows_absorbed", absorbed)
        if rewritten:
            obs.incr("stream.retrigger.rewrites")
            self.rows_published = 0
            self._force = True
        pending = self.pending_rows
        if pending <= 0 and not self._force:
            return False
        if not (
            self._force
            or ignore_policy
            or self.policy.should_fire(pending, len(self.database))
        ):
            return False
        obs.incr("stream.retrigger.fires")
        self.remine()
        return True

    def run(
        self,
        poll_interval: float = 2.0,
        max_polls: int | None = None,
        sleep=time.sleep,
    ) -> int:
        """Poll until interrupted (or *max_polls*); returns fires."""
        fires = 0
        polls = 0
        try:
            while max_polls is None or polls < max_polls:
                fires += int(self.poll())
                polls += 1
                if max_polls is not None and polls >= max_polls:
                    break
                sleep(poll_interval)
        except KeyboardInterrupt:
            pass
        return fires

    # ------------------------------------------------------------------
    # Re-mine → diff → push → publish
    # ------------------------------------------------------------------
    def remine(self) -> RuleIndexDelta | None:
        """One incremental re-mine over the absorbed database.

        Ordering is the crash-safety argument: the delta is pushed to
        the live server *before* the watcher installs the new index and
        checkpoint. A push failure (or rejection) leaves the watcher at
        the old version — the next fire re-mines and re-diffs from the
        same base — while a crash after a successful push is healed on
        restart by the adopt path (the saved index is behind the server
        by at most the unsaved delta, which re-mining regenerates).
        """
        with obs.span("stream.remine") as span:
            result = mine_negative_rules(
                self.database,
                self.taxonomy,
                config=self.config,
                session=self.session,
            )
            positives = generate_rules(
                result.large_itemsets, self.minconf
            )
            span.annotate("negative_rules", len(result.rules))
            span.annotate("positive_rules", len(positives))
        delta: RuleIndexDelta | None = None
        if self.index is None:
            self.index = RuleIndex(
                negative_rules=result.rules,
                positive_rules=positives,
                taxonomy=self.taxonomy,
                large_itemsets=result.large_itemsets,
                version=1,
            )
            obs.incr("stream.bootstrap")
        else:
            with obs.span("stream.delta.diff") as span:
                delta = RuleIndexDelta.diff(
                    self.index,
                    result.rules,
                    positives,
                    taxonomy=self.taxonomy,
                    large_itemsets=result.large_itemsets,
                )
                span.annotate("edits", delta.rule_edits)
            obs.incr("stream.delta.built")
            obs.incr("stream.delta.added", len(delta.added))
            obs.incr("stream.delta.removed", len(delta.removed))
            obs.incr("stream.delta.changed", len(delta.changed))
            if delta.is_empty():
                obs.incr("stream.delta.empty")
            if self.push is not None:
                self._push(delta)
            self.index = self.index.apply_delta(delta)
        self.remines += 1
        self.rows_published = len(self.database)
        self.policy.reset()
        self._force = False
        self._save()
        return delta

    def _push(self, delta: RuleIndexDelta) -> dict:
        with obs.span("stream.delta.push") as span:
            span.annotate("to_version", delta.to_version)
            response = self.push(delta)
        if isinstance(response, dict) and "error" in response:
            obs.incr("stream.delta.push_errors")
            raise StreamError(
                f"server rejected delta ({delta.summary()}): "
                f"{response['error']}"
            )
        obs.incr("stream.delta.pushed")
        self.deltas_pushed += 1
        return response

    def _save(self) -> None:
        """Persist the published index and its checkpoint (atomically)."""
        if self.index_path is not None and self.index is not None:
            self.index.save(self.index_path)
        if self.state_path is None or self.index is None:
            return
        payload = {
            **header("stream-checkpoint"),
            "basket": str(self.database.path),
            "rows": self.rows_published,
            "index_version": self.index.version,
        }
        tmp = self.state_path.with_name(self.state_path.name + ".tmp")
        tmp.write_text(json.dumps(payload) + "\n")
        os.replace(tmp, self.state_path)

    def status(self) -> dict:
        """A snapshot for logs and the CLI."""
        return {
            "rows": len(self.database),
            "rows_published": self.rows_published,
            "pending_rows": self.pending_rows,
            "index_version": (
                self.index.version if self.index is not None else None
            ),
            "rules": len(self.index) if self.index is not None else 0,
            "remines": self.remines,
            "deltas_pushed": self.deltas_pushed,
            "policy": self.policy.spec,
        }

    def __repr__(self) -> str:
        version = self.index.version if self.index is not None else None
        return (
            f"StreamingMiner(basket={str(self.database.path)!r}, "
            f"policy={self.policy.spec!r}, version={version}, "
            f"pending={self.pending_rows})"
        )
