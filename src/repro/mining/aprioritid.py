"""AprioriTid and AprioriHybrid (Agrawal & Srikant, VLDB 1994).

The paper's rule generator extends ap-genrules from reference [2], whose
other contribution is a pair of miners that avoid re-reading the database
after the first pass:

AprioriTid
    Keeps, for every transaction, the set of current-level candidates it
    contains (the set ``C̄_k``). Level ``k+1`` candidates are counted
    against ``C̄_k`` alone: a transaction contains candidate ``c`` exactly
    when it contains both of ``c``'s *generators* (the two ``k``-subsets
    joined by apriori-gen). Only **one** pass is ever made over the data;
    every later level works on the shrinking in-memory image.

AprioriHybrid
    Apriori's counting is cheaper in early passes (``C̄`` is huge), while
    AprioriTid wins once ``C̄`` fits comfortably in memory. The hybrid
    runs Apriori and switches to the Tid representation at the first
    level where the estimated image size drops under a budget.

Both return exactly the same :class:`LargeItemsetIndex` as plain Apriori
(property-tested).
"""

from __future__ import annotations

from collections import defaultdict

from .._util import check_fraction, check_positive
from ..data.database import TransactionDatabase
from ..itemset import Itemset
from .apriori import _default_session, apriori_gen
from .itemset_index import LargeItemsetIndex

#: A transaction's image: the ids of the current-level candidates it
#: contains. Ids index into the level's candidate list.
_Image = list[set[int]]


def _generators(candidate: Itemset) -> tuple[Itemset, Itemset]:
    """The two (k-1)-subsets apriori-gen joined to build *candidate*."""
    return candidate[:-1], candidate[:-2] + candidate[-1:]


def find_large_itemsets_aprioritid(
    database: TransactionDatabase,
    minsup: float,
    max_size: int | None = None,
) -> LargeItemsetIndex:
    """Mine all large itemsets with a single pass over the data.

    Parameters
    ----------
    database:
        Transactions over plain items.
    minsup:
        Fractional minimum support in ``(0, 1]``.
    max_size:
        Optional cap on itemset size.

    Returns
    -------
    LargeItemsetIndex
        Identical content to
        :func:`repro.mining.apriori.find_large_itemsets`.
    """
    check_fraction(minsup, "minsup")
    total = len(database)
    min_count = minsup * total
    index = LargeItemsetIndex()

    # The single data pass: materialize rows and count 1-itemsets.
    rows = list(database.scan())
    counts: dict[int, int] = defaultdict(int)
    for row in rows:
        for item in row:
            counts[item] += 1
    large_items = {
        item for item, count in counts.items() if count >= min_count
    }
    for item in large_items:
        index.add((item,), counts[item] / total)

    current_level = sorted((item,) for item in large_items)
    # Initial image: the large items of each row, as candidate ids.
    position = {candidate: i for i, candidate in enumerate(current_level)}
    image: _Image = [
        {position[(item,)] for item in row if item in large_items}
        for row in rows
    ]

    size = 2
    while current_level and (max_size is None or size <= max_size):
        candidates = apriori_gen(current_level)
        if not candidates:
            break
        survivors = _advance(candidates, current_level, image, min_count)
        current_level = []
        for candidate, count in survivors:
            index.add(candidate, count / total)
            current_level.append(candidate)
        size += 1
    return index


def _advance(
    candidates: list[Itemset],
    previous_level: list[Itemset],
    image: _Image,
    min_count: float,
) -> list[tuple[Itemset, int]]:
    """Count *candidates* against the image and shrink it in place.

    Mutates *image* so each entry holds the ids of the *surviving*
    candidates it contains (entries for the next level).
    """
    previous_position = {
        candidate: i for i, candidate in enumerate(previous_level)
    }
    # first-generator id -> [(candidate index, second-generator id)]
    by_first: dict[int, list[tuple[int, int]]] = defaultdict(list)
    for candidate_id, candidate in enumerate(candidates):
        first, second = _generators(candidate)
        by_first[previous_position[first]].append(
            (candidate_id, previous_position[second])
        )

    counts = [0] * len(candidates)
    matched_per_row: list[list[int]] = []
    for entry in image:
        matched: list[int] = []
        for first_id in entry:
            for candidate_id, second_id in by_first.get(first_id, ()):
                if second_id in entry:
                    matched.append(candidate_id)
                    counts[candidate_id] += 1
        matched_per_row.append(matched)

    survivors = [
        (candidate, counts[candidate_id])
        for candidate_id, candidate in enumerate(candidates)
        if counts[candidate_id] >= min_count
    ]
    renumber = {
        old_id: new_id
        for new_id, (old_id, _) in enumerate(
            (candidate_id, candidate)
            for candidate_id, candidate in enumerate(candidates)
            if counts[candidate_id] >= min_count
        )
    }
    for row_index, matched in enumerate(matched_per_row):
        image[row_index] = {
            renumber[candidate_id]
            for candidate_id in matched
            if candidate_id in renumber
        }
    return survivors


def find_large_itemsets_hybrid(
    database: TransactionDatabase,
    minsup: float,
    session=None,
    switch_budget: int = 100_000,
    max_size: int | None = None,
) -> LargeItemsetIndex:
    """AprioriHybrid: Apriori passes first, AprioriTid once ``C̄`` fits.

    Parameters
    ----------
    database, minsup, max_size:
        As for the other miners.
    session:
        :class:`~repro.core.session.MiningSession` used for the Apriori
        phase's counting; ``None`` uses a serial default-engine session.
    switch_budget:
        Switch to the Tid representation at the end of the first level
        whose image would hold at most this many (transaction, candidate)
        memberships — the original's "C̄_k fits in memory" test with the
        memory size expressed in entries.

    Returns
    -------
    LargeItemsetIndex
        Identical content to plain Apriori.
    """
    check_fraction(minsup, "minsup")
    check_positive(switch_budget, "switch_budget")
    if session is None:
        session = _default_session(database)
    total = len(database)
    min_count = minsup * total
    index = LargeItemsetIndex()

    item_counts = session.count(
        [(item,) for item in database.items],
        transactions=database,
        taxonomy=None,
    )
    current_level = []
    for single, count in sorted(item_counts.items()):
        if count >= min_count:
            index.add(single, count / total)
            current_level.append(single)

    size = 2
    while current_level and (max_size is None or size <= max_size):
        candidates = apriori_gen(current_level)
        if not candidates:
            break
        counts = session.count(
            candidates, transactions=database, taxonomy=None
        )
        current_level = []
        membership_entries = 0
        for candidate, count in counts.items():
            if count >= min_count:
                index.add(candidate, count / total)
                current_level.append(candidate)
                membership_entries += count
        size += 1
        if membership_entries <= switch_budget:
            break  # image is small enough; finish with the Tid phase

    if not current_level or (max_size is not None and size > max_size):
        return index

    # Build the image for the current level with one more pass, then run
    # the remaining levels in memory.
    current_level.sort()
    position = {candidate: i for i, candidate in enumerate(current_level)}
    image: _Image = []
    level_size = size - 1
    for row in database.scan():
        row_set = set(row)
        image.append(
            {
                position[candidate]
                for candidate in current_level
                if all(item in row_set for item in candidate)
            }
        )
    _ = level_size

    while current_level and (max_size is None or size <= max_size):
        candidates = apriori_gen(current_level)
        if not candidates:
            break
        survivors = _advance(candidates, current_level, image, min_count)
        current_level = []
        for candidate, count in survivors:
            index.add(candidate, count / total)
            current_level.append(candidate)
        size += 1
    return index
