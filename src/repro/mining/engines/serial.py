"""The serial row-scanning engines: bitmap, hashtree, index, brute.

All four share the same pass shape — read the rows once, optionally
extend each with taxonomy ancestors, match candidates — and differ only
in the matching data structure. :class:`RowScanEngine` holds the shared
shape; each subclass supplies ``_count_rows``.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Collection, Iterable, Iterator

from ...itemset import Itemset
from ...taxonomy.tree import Taxonomy
from ..hash_tree import HashTree
from .base import Capabilities, CountingEngine, EngineState, register_engine


def extended_rows(
    transactions: Iterable[Itemset],
    taxonomy: Taxonomy,
    keep: frozenset[int] | None,
) -> Iterator[Itemset]:
    """Yield transactions extended with ancestors (optionally filtered).

    *keep*, when given, restricts the extended transaction to items that
    can appear in some candidate — Cumulate's "filter the ancestors" and
    "drop useless items" optimizations rolled into one.
    """
    for row in transactions:
        extended = taxonomy.ancestor_closure(row)
        if keep is not None:
            extended = extended & keep
        yield tuple(sorted(extended))


class RowScanEngine(CountingEngine):
    """Shared pass shape of the serial row-scanning engines."""

    capabilities = Capabilities(shardable=True)

    def count(
        self,
        state: EngineState,
        candidates: Collection[Itemset],
        *,
        restrict_to_candidate_items: bool = False,
        cache_stats=None,
        parallel_stats=None,
    ) -> dict[Itemset, int]:
        rows: Iterable[Itemset] = state.rows()
        if state.taxonomy is not None:
            keep: frozenset[int] | None = None
            if restrict_to_candidate_items:
                keep = frozenset(
                    item for candidate in candidates for item in candidate
                )
            rows = extended_rows(rows, state.taxonomy, keep)
        return self._count_rows(rows, candidates)

    @staticmethod
    def _count_rows(
        transactions: Iterable[Itemset], candidates: Collection[Itemset]
    ) -> dict[Itemset, int]:
        raise NotImplementedError


@register_engine("bitmap")
class BitmapEngine(RowScanEngine):
    """Vertical counting with per-item transaction bitsets (default).

    Builds ``mask[item]`` — an arbitrary-precision integer whose bit
    ``t`` is set when transaction ``t`` contains the item — restricted
    to items that occur in some candidate, then intersects masks per
    candidate and popcounts. By far the fastest pure-Python engine; the
    1998 paper predates the vertical-layout literature, so this engine
    is an engineering substitution (documented in DESIGN.md) — the
    paper-faithful hash tree remains available and equivalent.
    """

    @staticmethod
    def _count_rows(
        transactions: Iterable[Itemset], candidates: Collection[Itemset]
    ) -> dict[Itemset, int]:
        if not candidates:
            return {}
        wanted = set()
        for candidate in candidates:
            wanted.update(candidate)
        masks: dict[int, int] = {}
        get_mask = masks.get
        for position, row in enumerate(transactions):
            bit = 1 << position
            for item in row:
                if item in wanted:
                    masks[item] = get_mask(item, 0) | bit
        counts: dict[Itemset, int] = {}
        for candidate in candidates:
            # Micro-fast path: a candidate whose items never occurred in
            # this pass needs no mask intersection (and no popcount).
            mask = get_mask(candidate[0])
            if mask is None:
                counts[candidate] = 0
                continue
            for item in candidate[1:]:
                other = get_mask(item)
                if other is None:
                    mask = 0
                    break
                mask &= other
                if not mask:
                    break
            counts[candidate] = mask.bit_count()
        return counts


@register_engine("hashtree")
class HashTreeEngine(RowScanEngine):
    """The classic Apriori hash tree of paper Section 2.4.

    Candidates are grouped by size and one tree is built per size (see
    :mod:`repro.mining.hash_tree`).
    """

    @staticmethod
    def _count_rows(
        transactions: Iterable[Itemset], candidates: Collection[Itemset]
    ) -> dict[Itemset, int]:
        if not candidates:
            return {}
        by_size: dict[int, list[Itemset]] = defaultdict(list)
        for candidate in candidates:
            by_size[len(candidate)].append(candidate)
        trees = {
            size: HashTree(members) for size, members in by_size.items()
        }
        for row in transactions:
            for tree in trees.values():
                tree.add_transaction(row)
        counts: dict[Itemset, int] = {}
        for tree in trees.values():
            counts.update(tree.counts())
        return counts


@register_engine("index")
class IndexEngine(RowScanEngine):
    """Candidates bucketed by smallest item, probed per transaction.

    Simple and fast for small candidate sets.
    """

    @staticmethod
    def _count_rows(
        transactions: Iterable[Itemset], candidates: Collection[Itemset]
    ) -> dict[Itemset, int]:
        if not candidates:
            return {}
        counts = dict.fromkeys(candidates, 0)
        by_first: dict[int, list[Itemset]] = defaultdict(list)
        for candidate in counts:
            by_first[candidate[0]].append(candidate)
        for row in transactions:
            row_set = set(row)
            for item in row:
                for candidate in by_first.get(item, ()):
                    if all(member in row_set for member in candidate[1:]):
                        counts[candidate] += 1
        return counts


@register_engine("brute")
class BruteEngine(RowScanEngine):
    """Every candidate against every transaction (the verification oracle).

    The engine all others are property-tested against.
    """

    @staticmethod
    def _count_rows(
        transactions: Iterable[Itemset], candidates: Collection[Itemset]
    ) -> dict[Itemset, int]:
        if not candidates:
            return {}
        counts = dict.fromkeys(candidates, 0)
        candidate_list = list(counts)
        for row in transactions:
            row_set = set(row)
            for candidate in candidate_list:
                if all(item in row_set for item in candidate):
                    counts[candidate] += 1
        return counts
