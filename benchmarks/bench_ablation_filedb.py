"""A7 — Ablation: disk-backed passes restore the paper's cost model.

With an in-memory database the pass-count difference between the Naive
(2n) and Improved (n+1) schedule barely shows in wall-clock time; the
paper's database lived on disk, where every extra pass costs real IO.
This ablation runs both miners over a :class:`FileBackedDatabase` —
which re-reads and re-parses the basket file on every pass — and reports
time, pass counts and bytes read.

Run directly::

    python -m benchmarks.bench_ablation_filedb
"""

import tempfile
import time
from pathlib import Path

import pytest

from repro.core.negmining import ImprovedNegativeMiner, NaiveNegativeMiner
from repro.data.filedb import FileBackedDatabase
from repro.data.io import save_basket_file

from .common import MINRI, dataset, support_sweep

MINSUP = support_sweep()[0]


def _materialize(tmp_dir: str) -> tuple[FileBackedDatabase, object, int]:
    data = dataset("short")
    path = Path(tmp_dir) / "short.basket"
    save_basket_file(data.database, path)
    file_db = FileBackedDatabase(path)
    return file_db, data.taxonomy, path.stat().st_size


@pytest.mark.parametrize(
    "miner_class", [ImprovedNegativeMiner, NaiveNegativeMiner],
    ids=["improved", "naive"],
)
def test_filedb_miner(benchmark, tmp_path, miner_class):
    file_db, taxonomy, file_size = _materialize(str(tmp_path))

    def mine():
        file_db.reset_scans()
        return miner_class(file_db, taxonomy, MINSUP, MINRI).mine()

    output = benchmark.pedantic(mine, rounds=1, iterations=1)
    benchmark.extra_info.update(
        passes=output.stats.data_passes,
        bytes_read=output.stats.data_passes * file_size,
    )


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp_dir:
        file_db, taxonomy, file_size = _materialize(tmp_dir)
        print(
            f"=== A7: disk-backed mining at MinSup={MINSUP} "
            f"(basket file {file_size / 1024:.0f} KiB) ==="
        )
        for label, miner_class in (
            ("improved", ImprovedNegativeMiner),
            ("naive", NaiveNegativeMiner),
        ):
            file_db.reset_scans()
            started = time.perf_counter()
            output = miner_class(file_db, taxonomy, MINSUP, MINRI).mine()
            elapsed = time.perf_counter() - started
            read = output.stats.data_passes * file_size
            print(
                f"  {label:<9} time={elapsed:7.2f}s "
                f"passes={output.stats.data_passes:3d} "
                f"IO={read / 1024:7.0f} KiB "
                f"negatives={output.stats.negative_itemsets}"
            )
        print(
            "\nthe Naive schedule's extra passes are pure re-read/"
            "re-parse cost — the 1998 trade-off, reconstructed."
        )


if __name__ == "__main__":
    main()
