"""Versioned payload serialization shared across the library.

Every persistent artifact — rules, the large-itemset hash table, the
compiled serving index — serializes to a plain ``dict`` carrying two
header fields: ``"schema"`` (an integer version, :data:`SCHEMA_VERSION`)
and ``"kind"`` (a short artifact tag such as ``"negative-rule"``).
Readers validate both before touching the body, so a file written by a
future incompatible version fails loudly with a :class:`ConfigError`
instead of silently mis-parsing.

The helpers here are intentionally tiny: :func:`header` builds the two
header fields, :func:`check_payload` validates them. Each artifact owns
its body format (``as_dict``/``from_dict`` on the rule types,
``to_payload``/``from_payload`` on the index types); this module only
pins the shared envelope.
"""

from __future__ import annotations

from .errors import ConfigError

#: Version stamped on (and required of) every serialized payload.
#: Bump only on incompatible body changes; readers reject mismatches.
SCHEMA_VERSION = 1


def header(kind: str) -> dict:
    """The envelope fields every serialized payload starts with."""
    return {"schema": SCHEMA_VERSION, "kind": kind}


def check_payload(payload: object, kind: str) -> dict:
    """Validate the envelope of *payload*; return it for chaining.

    Raises :class:`ConfigError` when *payload* is not a dict, carries a
    different schema version, or is tagged with another kind.
    """
    if not isinstance(payload, dict):
        raise ConfigError(
            f"expected a serialized {kind!r} payload (a dict), "
            f"got {type(payload).__name__}"
        )
    schema = payload.get("schema")
    if schema != SCHEMA_VERSION:
        raise ConfigError(
            f"unsupported {kind!r} schema version {schema!r}; "
            f"this build reads version {SCHEMA_VERSION}"
        )
    found = payload.get("kind")
    if found != kind:
        raise ConfigError(
            f"payload is a serialized {found!r}, expected {kind!r}"
        )
    return payload
