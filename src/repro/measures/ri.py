"""The paper's rule interest measure RI (Section 2).

For a negative rule ``X =/=> Y`` over the negative itemset ``n = X ∪ Y``::

    RI = (E[support(n)] - support(n)) / support(X)

RI is *negatively* related to the actual support: it is highest when the
actual support is zero and zero (or below) when the actual support meets
or exceeds the expectation. A rule is *strong* when ``RI >= MinRI`` and
both ``support(X)`` and ``support(Y)`` meet MinSup.

This module is the implementation behind the registered ``"ri"``
measure *and* the plain functions (:func:`rule_interest`,
:func:`deviation_threshold`) the rest of the codebase historically
imported from :mod:`repro.core.interest` — that module is now a compat
shim over this one.
"""

from __future__ import annotations

from ..errors import ConfigError
from .registry import InterestMeasure, MeasureCapabilities, register_measure


def rule_interest(
    expected_support: float,
    actual_support: float,
    antecedent_support: float,
) -> float:
    """Compute RI for a negative rule.

    Parameters
    ----------
    expected_support:
        ``E[support(X ∪ Y)]`` derived from the taxonomy (see
        :mod:`repro.core.expectation`).
    actual_support:
        Measured ``support(X ∪ Y)``.
    antecedent_support:
        ``support(X)``; must be positive — the paper requires the
        antecedent to be a large itemset, so a zero here indicates a
        caller bug rather than a data property.

    Returns
    -------
    float
        The (possibly negative) interest value. Values below zero mean the
        itemset occurs *more* often than expected.
    """
    if antecedent_support <= 0.0:
        raise ConfigError(
            "antecedent support must be positive "
            f"(got {antecedent_support!r}); the antecedent of a negative "
            "rule must be a large itemset"
        )
    if expected_support < 0.0 or actual_support < 0.0:
        raise ConfigError("supports cannot be negative")
    return (expected_support - actual_support) / antecedent_support


def deviation_threshold(minsup: float, minri: float) -> float:
    """The minimum expectation-vs-actual gap a negative itemset must show.

    Section 2 decomposes the problem into "finding itemsets whose actual
    support deviates at least ``MinSup × MinRI`` from their expected
    support": since any rule antecedent has support at least MinSup, a gap
    below this bound cannot yield RI >= MinRI for any split of the itemset.
    """
    if minsup <= 0.0 or minri <= 0.0:
        raise ConfigError("minsup and minri must be positive")
    return minsup * minri


@register_measure("ri")
class RIMeasure(InterestMeasure):
    """Paper RI: taxonomy-expectation deviation, normalized by sup(X).

    The default measure — the exact semantics of the paper's Section 2:
    a candidate is a negative itemset when its actual support falls at
    least ``MinSup × MinRI`` below its taxonomy-derived expectation, and
    a split is a strong rule when ``RI >= MinRI``.

    ``figure3_literal=True`` swaps the itemset predicate for Figure 3's
    literal final line (``actual < MinSup × MinRI``), which contradicts
    the body text's deviation predicate; kept for comparison (DESIGN.md
    §3). It never changes the rule-level arithmetic.
    """

    capabilities = MeasureCapabilities(
        needs_taxonomy_expectation=True,
        supports_positive=False,
        bounded_range=False,
        monotone_prune=True,
    )

    def __init__(self, figure3_literal: bool = False) -> None:
        self.figure3_literal = figure3_literal

    @classmethod
    def from_policy(cls, policy) -> "RIMeasure":
        return cls(figure3_literal=policy.figure3_literal)

    def admits_itemset(
        self,
        expected: float,
        actual: float,
        singles: tuple[float, ...],
        minsup: float,
        minri: float,
    ) -> bool:
        threshold = deviation_threshold(minsup, minri)
        if self.figure3_literal:
            return actual < threshold
        return expected - actual >= threshold

    def rule_score(
        self,
        expected: float,
        actual: float,
        antecedent_support: float,
        consequent_support: float,
    ) -> float:
        return rule_interest(expected, actual, antecedent_support)

    def admits_rule(
        self, score: float, minsup: float | None, minri: float
    ) -> bool:
        return score >= minri
