"""Shared fixtures: small hand-checked datasets used across the suite."""

from __future__ import annotations

import random

import pytest

from repro.data.database import TransactionDatabase
from repro.mining.itemset_index import LargeItemsetIndex
from repro.taxonomy.builders import taxonomy_from_nested


@pytest.fixture
def figure1_taxonomy():
    """The taxonomy of paper Figure 1.

    ::

        A           F
        |           |
        B   C       G   H   I
            |       |
            D E     J K
    """
    return taxonomy_from_nested(
        {
            "A": {"B": [], "C": ["D", "E"]},
            "F": {"G": ["J", "K"], "H": [], "I": []},
        }
    )


@pytest.fixture
def figure2_taxonomy():
    """The retail taxonomy of paper Figure 2 (yogurt / water example)."""
    return taxonomy_from_nested(
        {
            "Beverages": {
                "Carbonated": [],
                "NonCarbonated": {
                    "Bottled juices": [],
                    "Bottled water": ["Evian", "Perrier"],
                },
            },
            "Desserts": {
                "Ice creams": [],
                "Frozen yogurt": ["Bryers", "Healthy Choice"],
            },
        }
    )


#: Table 1 of the paper, as absolute supports out of 100,000 transactions.
TABLE1_TOTAL = 100_000
TABLE1_SUPPORTS = {
    "Bryers": 20_000,
    "Healthy Choice": 10_000,
    "Evian": 10_000,
    "Perrier": 5_000,
    "Frozen yogurt": 30_000,
    "Bottled water": 20_000,
}
TABLE1_PAIR = ("Frozen yogurt", "Bottled water")
TABLE1_PAIR_SUPPORT = 15_000

#: Table 2 of the paper: actual supports measured for the candidates.
TABLE2_ACTUAL = {
    ("Bryers", "Evian"): 7_500,
    ("Bryers", "Perrier"): 500,
    ("Healthy Choice", "Evian"): 4_200,
    ("Healthy Choice", "Perrier"): 2_500,
}
#: Table 2 of the paper: the expected supports *as published* (see
#: DESIGN.md — these are inconsistent with the Case-1 formula applied to
#: Table 1 and are reproduced verbatim only in the "as published" test).
TABLE2_EXPECTED_PUBLISHED = {
    ("Bryers", "Evian"): 6_000,
    ("Bryers", "Perrier"): 4_000,
    ("Healthy Choice", "Evian"): 3_000,
    ("Healthy Choice", "Perrier"): 2_000,
}


@pytest.fixture
def table1_index(figure2_taxonomy):
    """A LargeItemsetIndex loaded with the paper's Table 1 supports."""
    taxonomy = figure2_taxonomy
    index = LargeItemsetIndex()
    for name, count in TABLE1_SUPPORTS.items():
        index.add((taxonomy.id_of(name),), count / TABLE1_TOTAL)
    pair = tuple(
        sorted(taxonomy.id_of(name) for name in TABLE1_PAIR)
    )
    index.add(pair, TABLE1_PAIR_SUPPORT / TABLE1_TOTAL)
    # {Bryers, Evian} and {Healthy Choice, Evian} "will already be found
    # to be large" (their actual supports exceed MinSup = 4,000).
    for names, actual in TABLE2_ACTUAL.items():
        if actual >= 4_000:
            items = tuple(
                sorted(taxonomy.id_of(name) for name in names)
            )
            index.add(items, actual / TABLE1_TOTAL)
    return index


@pytest.fixture
def small_database():
    """A deterministic 40-transaction database over 6 items."""
    rows = [
        [1, 2, 3],
        [1, 2],
        [2, 3],
        [1, 3],
        [4, 5],
        [1, 2, 4],
        [2, 3, 5],
        [1, 2, 3, 4],
        [6],
        [1, 6],
    ] * 4
    return TransactionDatabase(rows)


@pytest.fixture
def random_database():
    """A 300-transaction random database with a planted association."""
    rng = random.Random(20_240_613)
    items = list(range(1, 16))
    rows = []
    for _ in range(300):
        row = set(rng.sample(items, rng.randint(1, 5)))
        if rng.random() < 0.4:
            row |= {1, 2}  # planted frequent pair
        rows.append(row)
    return TransactionDatabase(rows)


@pytest.fixture
def soft_drinks_taxonomy():
    """Taxonomy for the Ruffles / Coke / Pepsi motivating example."""
    return taxonomy_from_nested(
        {
            "beverages": {
                "soft drinks": ["Coke", "Pepsi"],
                "bottled water": ["Evian", "Perrier"],
            },
            "snacks": {"chips": ["Ruffles", "Lays"]},
        }
    )


@pytest.fixture
def soft_drinks_database(soft_drinks_taxonomy):
    """2,000 transactions where Ruffles goes with Coke but never Pepsi."""
    taxonomy = soft_drinks_taxonomy
    coke, pepsi = taxonomy.id_of("Coke"), taxonomy.id_of("Pepsi")
    ruffles, lays = taxonomy.id_of("Ruffles"), taxonomy.id_of("Lays")
    evian = taxonomy.id_of("Evian")
    rng = random.Random(11)
    rows = []
    for _ in range(2000):
        row = set()
        if rng.random() < 0.5:
            row.add(ruffles)
            if rng.random() < 0.8:
                row.add(coke)
            if rng.random() < 0.02:
                row.add(pepsi)
        else:
            if rng.random() < 0.4:
                row.add(pepsi)
            if rng.random() < 0.3:
                row.add(lays)
        if rng.random() < 0.3:
            row.add(evian)
        if not row:
            row.add(evian)
        rows.append(row)
    return TransactionDatabase(rows)
