"""Property-based tests for the data layer (IO round-trips, filedb)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.database import TransactionDatabase
from repro.data.filedb import FileBackedDatabase
from repro.data.io import (
    load_basket_file,
    load_taxonomy_file,
    save_basket_file,
    save_taxonomy_file,
)
from repro.mining.apriori import find_large_itemsets
from repro.taxonomy.tree import Taxonomy

databases = st.lists(
    st.lists(
        st.integers(min_value=0, max_value=500), min_size=1, max_size=10
    ),
    min_size=1,
    max_size=50,
).map(TransactionDatabase)


@settings(max_examples=40, deadline=None)
@given(databases)
def test_basket_round_trip(tmp_path_factory, database):
    path = tmp_path_factory.mktemp("baskets") / "data.basket"
    save_basket_file(database, path)
    assert list(load_basket_file(path)) == list(database)


@settings(max_examples=40, deadline=None)
@given(databases)
def test_filedb_streams_identical_rows(tmp_path_factory, database):
    path = tmp_path_factory.mktemp("filedb") / "data.basket"
    save_basket_file(database, path)
    from_disk = FileBackedDatabase(path)
    assert list(from_disk.scan()) == list(database)
    assert len(from_disk) == len(database)
    assert from_disk.items == database.items
    assert abs(
        from_disk.average_length() - database.average_length()
    ) < 1e-12


@settings(max_examples=20, deadline=None)
@given(databases, st.sampled_from([0.2, 0.5]))
def test_mining_identical_through_filedb(
    tmp_path_factory, database, minsup
):
    path = tmp_path_factory.mktemp("mine") / "data.basket"
    save_basket_file(database, path)
    from_disk = FileBackedDatabase(path)
    assert find_large_itemsets(from_disk, minsup) == find_large_itemsets(
        database, minsup
    )


@st.composite
def taxonomies(draw):
    size = draw(st.integers(min_value=1, max_value=25))
    parents = {}
    for node in range(1, size):
        if draw(st.booleans()):
            parents[node] = draw(
                st.integers(min_value=0, max_value=node - 1)
            )
    names = {
        node: f"node-{node}"
        for node in range(size)
        if draw(st.booleans())
    }
    roots = [node for node in range(size) if node not in parents]
    return Taxonomy(parents, names=names, extra_roots=roots)


@settings(max_examples=40, deadline=None)
@given(taxonomies())
def test_taxonomy_round_trip(tmp_path_factory, taxonomy):
    path = tmp_path_factory.mktemp("tax") / "taxonomy.tsv"
    save_taxonomy_file(taxonomy, path)
    loaded = load_taxonomy_file(path)
    assert loaded.nodes == taxonomy.nodes
    assert loaded.parent_map() == taxonomy.parent_map()
    assert loaded.leaves == taxonomy.leaves
    assert loaded.names_map() == taxonomy.names_map()
