"""High-level façade: mine strong negative association rules in one call.

:func:`mine_negative_rules` wires together the full pipeline — generalized
positive mining, negative candidate generation, counting, and rule
generation — behind one configurable entry point, which is what the
examples, the CLI and most downstream users call.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from collections.abc import Iterable

from .._util import check_fraction, check_positive
from ..data.database import TransactionDatabase
from ..data.filedb import FileBackedDatabase
from ..errors import ConfigError
from ..measures.registry import (
    validate_spec as validate_measure_spec,
)
from ..mining.engines import validate_spec
from ..mining.generalized import ALGORITHMS
from ..mining.itemset_index import LargeItemsetIndex
from ..obs import api as obs
from ..obs.api import METRICS_MODES
from ..taxonomy.tree import Taxonomy
from .candidates import NegativeCandidate
from .negmining import (
    ImprovedNegativeMiner,
    MinerOutput,
    MiningStats,
    NaiveNegativeMiner,
    NegativeItemset,
)
from .rulegen import NegativeRule, generate_negative_rules
from .session import MiningSession

MINERS = ("improved", "naive")


@dataclass(frozen=True, slots=True)
class MiningConfig:
    """All tunables of the negative-mining pipeline.

    Attributes
    ----------
    minsup:
        Fractional minimum support (both rule sides must meet it).
    minri:
        Minimum rule interest RI.
    miner:
        ``"improved"`` (Figure 3; default) or ``"naive"`` (Section 2.2.1).
    algorithm:
        Generalized positive miner: ``"basic"``, ``"cumulate"``,
        ``"estmerge"`` (Improved miner only; Naive is level-wise by
        nature).
    engine:
        Support-counting engine spec: a registered engine name
        (``"bitmap"``, ``"cached"``, ``"numpy"``, ``"hashtree"``,
        ``"index"``, ``"brute"``, ``"parallel"``) or a composition
        ``"parallel:<inner>"`` (e.g. ``"parallel:numpy"``). Run
        ``python -m repro engines`` for the full capability table.
    measure:
        Interestingness-measure spec judging candidates and rules:
        ``"ri"`` (the paper's rule interest; default),
        ``"kong-interest"`` (independence-deviation, arXiv:1806.07084)
        or ``"coherent"`` (contingency-quadrant dominance,
        arXiv:1308.2310) — any name registered with
        :func:`repro.measures.registry.register_measure`. Run
        ``python -m repro measures`` for the full capability table.
    max_size:
        Optional cap on itemset size.
    max_candidates_in_memory:
        Memory budget for the Improved miner's counting phase
        (Section 2.5); ``None`` = single batch.
    prune_taxonomy:
        Delete small 1-itemsets from the taxonomy before candidate
        generation (Improved miner optimization).
    prune_small_antecedents:
        Figure 4's consequent pruning on small antecedents.
    figure3_literal:
        Use Figure 3's literal negative-itemset predicate instead of the
        body text's deviation predicate (DESIGN.md §3).
    max_sibling_replacements:
        Cap on sibling replacements per candidate; ``1`` matches the
        paper's Case-3 examples and tames dense-data blow-up (see
        :func:`repro.core.candidates.generate_negative_candidates`).
    seed:
        Seed for the EstMerge sample, when used.
    n_jobs:
        Worker processes for sharded support counting (see
        :mod:`repro.parallel`). ``1`` (default) runs fully serial; any
        higher value fans each counting pass out across that many
        processes. Counts are bit-identical either way.
    shard_rows:
        Target rows per shard for parallel counting; ``None`` splits
        each pass into ``n_jobs`` equal shards.
    use_cache:
        ``engine="cached"`` only: reuse the vertical index attached to
        the database across passes (and runs). ``False`` rebuilds the
        index on every pass — the rebuild-per-pass baseline the
        benchmarks compare against.
    cache_bytes:
        ``engine="cached"`` only: LRU memory budget (bytes) for the
        vertical index; least-recently-used bitmaps are evicted and
        rebuilt on demand. ``None`` = unbounded.
    packed:
        ``engine="cached"`` only: store the vertical index bit-packed
        (``uint64`` words) and count with the vectorized NumPy kernel
        (:mod:`repro.mining.bitpack`) instead of big-int AND loops.
        Identical output, faster counting. The ``"numpy"`` engine always
        packs; this flag only selects the cached index's backend.
    shm:
        Upgrade parallel counting to the zero-copy shared-memory kernel
        (the ``parallel-shm`` engine): the packed word matrix is
        published once via ``multiprocessing.shared_memory`` and
        ``n_jobs`` persistent workers attach to it, shipping only
        candidate batches and count vectors. Requires ``n_jobs > 1`` or
        a parallel engine spec; counts stay bit-identical either way.
    segment_rows:
        ``engine="mmap"`` only: rows per spilled packed segment
        (:mod:`repro.mining.segmatrix`). ``None`` uses the default
        segment size.
    max_resident_bytes:
        ``engine="mmap"`` only: budget (bytes) for concurrently open
        segment blocks; segments beyond it are evicted LRU and
        re-opened as read-only memory maps on demand. ``None`` keeps
        every block resident. This is the knob that makes peak counting
        memory independent of |D|.
    spill_dir:
        ``engine="mmap"`` only: parent directory for the temporary
        spill directory holding segment blocks; ``None`` uses the
        system temp dir. The directory is removed when the engine (or
        the process) goes away.
    trace_path:
        Write a JSON-lines trace of every span (counting passes, cache
        builds, parallel shards, miner phases) plus a final metrics
        snapshot to this file (see :mod:`repro.obs`). ``None`` (default)
        disables tracing entirely — the no-op path costs one ``is None``
        check per instrumentation point.
    metrics:
        ``"none"`` (default), ``"summary"`` (human-readable metric
        report on stderr when mining finishes) or ``"json"`` (the same
        as a JSON object). Independent of *trace_path*; either enables
        the process-wide metrics registry for the duration of the call.
    """

    minsup: float = 0.01
    minri: float = 0.5
    miner: str = "improved"
    algorithm: str = "cumulate"
    engine: str = "bitmap"
    measure: str = "ri"
    max_size: int | None = None
    max_candidates_in_memory: int | None = None
    prune_taxonomy: bool = True
    prune_small_antecedents: bool = True
    figure3_literal: bool = False
    max_sibling_replacements: int | None = None
    seed: int | None = None
    n_jobs: int = 1
    shard_rows: int | None = None
    use_cache: bool = True
    cache_bytes: int | None = None
    packed: bool = False
    shm: bool = False
    segment_rows: int | None = None
    max_resident_bytes: int | None = None
    spill_dir: str | None = None
    trace_path: str | None = None
    metrics: str = "none"

    def __post_init__(self) -> None:
        check_fraction(self.minsup, "minsup")
        check_fraction(self.minri, "minri")
        if self.miner not in MINERS:
            raise ConfigError(
                f"unknown miner {self.miner!r}; choose from {MINERS}"
            )
        if self.algorithm not in ALGORITHMS:
            raise ConfigError(
                f"unknown algorithm {self.algorithm!r}; "
                f"choose from {ALGORITHMS}"
            )
        validate_spec(self.engine)
        validate_measure_spec(self.measure)
        if self.figure3_literal and self.measure != "ri":
            raise ConfigError(
                "figure3_literal is the RI measure's literal Figure 3 "
                f"predicate; it cannot combine with measure="
                f"{self.measure!r}"
            )
        check_positive(self.n_jobs, "n_jobs")
        if self.shard_rows is not None:
            check_positive(self.shard_rows, "shard_rows")
        if self.cache_bytes is not None:
            check_positive(self.cache_bytes, "cache_bytes")
        if self.segment_rows is not None:
            check_positive(self.segment_rows, "segment_rows")
        if self.max_resident_bytes is not None:
            check_positive(self.max_resident_bytes, "max_resident_bytes")
        if self.metrics not in METRICS_MODES:
            raise ConfigError(
                f"unknown metrics mode {self.metrics!r}; "
                f"choose from {METRICS_MODES}"
            )


@dataclass(slots=True)
class NegativeMiningResult:
    """Everything the pipeline produced, plus provenance.

    Attributes
    ----------
    rules:
        Strong negative rules sorted by descending RI.
    negative_itemsets:
        Confirmed negative itemsets sorted by descending deviation.
    candidates:
        Every candidate that reached the counting phase.
    large_itemsets:
        The generalized large itemsets (step 1's output).
    stats:
        Pass/candidate accounting.
    config:
        The configuration used.
    counts, total_transactions:
        Raw counting results for every counted candidate and |D| — the
        inputs :func:`repro.measures.compare.compare_measures` needs to
        re-judge this run under every registered measure without
        another pass over the data.
    """

    rules: list[NegativeRule]
    negative_itemsets: list[NegativeItemset]
    candidates: dict[tuple[int, ...], NegativeCandidate]
    large_itemsets: LargeItemsetIndex
    stats: MiningStats
    config: MiningConfig = field(default_factory=MiningConfig)
    counts: dict[tuple[int, ...], int] = field(default_factory=dict)
    total_transactions: int = 0

    def summary(self, taxonomy: Taxonomy | None = None, limit: int = 10) -> str:
        """A human-readable report of the top rules."""
        lines = [
            f"large itemsets : {self.stats.large_itemsets}",
            f"candidates     : {self.stats.candidates_generated}",
            f"negative sets  : {self.stats.negative_itemsets}",
            f"rules          : {len(self.rules)}",
            f"data passes    : {self.stats.data_passes}",
        ]
        if self.stats.physical_passes != self.stats.data_passes:
            lines.append(
                f"physical passes: {self.stats.physical_passes}"
            )
        if self.stats.cache_hits or self.stats.cache_misses:
            lookups = self.stats.cache_hits + self.stats.cache_misses
            lines.append(
                f"index cache    : {self.stats.cache_hits}/{lookups} hits "
                f"({self.stats.cache_hit_rate:.0%}), "
                f"{self.stats.cache_bytes} bytes"
            )
        if self.stats.kernel_batches:
            lines.append(
                f"kernel batches : {self.stats.kernel_batches}"
            )
        if self.stats.cache_extensions:
            lines.append(
                f"cache extends  : {self.stats.cache_extensions} "
                f"(appends absorbed without a rebuild)"
            )
        if self.stats.segments_packed or self.stats.segments_reused:
            lines.append(
                f"segments       : {self.stats.segments_packed} packed, "
                f"{self.stats.segments_extended} extended, "
                f"{self.stats.segments_reused} reused, "
                f"{self.stats.segments_mmap_reads} mmap reads"
            )
        if self.stats.matrix_bytes or self.stats.segments_resident_bytes:
            lines.append(
                f"memory         : matrix {self.stats.matrix_bytes} B, "
                f"segments {self.stats.segments_resident_bytes} B "
                f"resident / {self.stats.segments_spilled_bytes} B spilled"
            )
        if self.stats.shards:
            lines.append(
                f"shards         : {self.stats.shards} "
                f"(workers {self.stats.workers_launched}, "
                f"retries {self.stats.worker_retries}, "
                f"fallbacks {self.stats.worker_fallbacks})"
            )
        if self.stats.shm_batches:
            lines.append(
                f"shared memory  : {self.stats.shm_batches} batches "
                f"(workers {self.stats.workers_launched}, "
                f"publishes {self.stats.shm_publishes}, "
                f"{self.stats.shm_bytes} bytes)"
            )
        for rule in self.rules[:limit]:
            lines.append("  " + rule.format(taxonomy))
        if len(self.rules) > limit:
            lines.append(f"  ... and {len(self.rules) - limit} more")
        return "\n".join(lines)


def mine_negative_rules(
    transactions: (
        TransactionDatabase | FileBackedDatabase | Iterable[Iterable[int]]
    ),
    taxonomy: Taxonomy,
    minsup: float | None = None,
    minri: float | None = None,
    config: MiningConfig | None = None,
    session: MiningSession | None = None,
    **overrides,
) -> NegativeMiningResult:
    """Mine strong negative association rules from customer transactions.

    Parameters
    ----------
    transactions:
        A :class:`TransactionDatabase`, a
        :class:`~repro.data.filedb.FileBackedDatabase` (scanned from
        disk on every pass), or any iterable of item-id iterables
        (transactions over taxonomy leaves).
    taxonomy:
        The item taxonomy (the domain knowledge).
    minsup, minri:
        Shorthand for the two main thresholds; any other
        :class:`MiningConfig` field can be passed as a keyword override.
    config:
        A full configuration; *minsup*/*minri*/keyword overrides are
        applied on top of it.
    session:
        An existing :class:`~repro.core.session.MiningSession` to run
        under instead of building a fresh one. The session must be
        bound to the same *transactions* object — reusing it across
        runs is what keeps repeated mining incremental: the engine's
        prepared state (vertical index, packed segments) persists on
        the session, so a re-mine after an append extends the cached
        structures by the appended rows instead of rebuilding them.
        The streaming watcher passes its long-lived session here.

    Returns
    -------
    NegativeMiningResult

    Examples
    --------
    >>> from repro.taxonomy import taxonomy_from_nested
    >>> taxonomy = taxonomy_from_nested(
    ...     {"drinks": {"soda": ["Coke", "Pepsi"]}})
    >>> coke, pepsi = taxonomy.id_of("Coke"), taxonomy.id_of("Pepsi")
    >>> rows = [[coke]] * 50 + [[pepsi]] * 50
    >>> result = mine_negative_rules(rows, taxonomy, minsup=0.2, minri=0.2)
    >>> result.stats.data_passes >= 2
    True
    """
    settings = dict(overrides)
    if minsup is not None:
        settings["minsup"] = minsup
    if minri is not None:
        settings["minri"] = minri
    if config is not None:
        base = {
            name: getattr(config, name)
            for name in MiningConfig.__dataclass_fields__
        }
        base.update(settings)
        settings = base
    final = MiningConfig(**settings)

    if isinstance(transactions, (TransactionDatabase, FileBackedDatabase)):
        database = transactions
    else:
        database = TransactionDatabase(transactions)

    if session is None:
        session = MiningSession.from_config(database, taxonomy, final)
    with session.observed():
        output = _run_miner(database, taxonomy, final, session)
        with obs.span("mine.rule_gen") as span:
            rules = generate_negative_rules(
                output.negatives,
                output.large_itemsets,
                final.minri,
                prune_small_antecedents=final.prune_small_antecedents,
                measure=session.measure,
                minsup=final.minsup,
            )
            span.annotate("rules", len(rules))
    return NegativeMiningResult(
        rules=rules,
        negative_itemsets=output.negatives,
        candidates=output.candidates,
        large_itemsets=output.large_itemsets,
        stats=output.stats,
        config=final,
        counts=output.counts,
        total_transactions=output.total_transactions,
    )


def _run_miner(
    database: TransactionDatabase,
    taxonomy: Taxonomy,
    config: MiningConfig,
    session: MiningSession,
) -> MinerOutput:
    if config.miner == "naive":
        miner: NaiveNegativeMiner | ImprovedNegativeMiner = (
            NaiveNegativeMiner(
                database,
                taxonomy,
                config.minsup,
                config.minri,
                session=session,
                max_size=config.max_size,
                figure3_literal=config.figure3_literal,
                max_sibling_replacements=config.max_sibling_replacements,
            )
        )
    else:
        rng = random.Random(config.seed) if config.seed is not None else None
        miner = ImprovedNegativeMiner(
            database,
            taxonomy,
            config.minsup,
            config.minri,
            algorithm=config.algorithm,
            session=session,
            max_size=config.max_size,
            max_candidates_in_memory=config.max_candidates_in_memory,
            prune_taxonomy=config.prune_taxonomy,
            figure3_literal=config.figure3_literal,
            max_sibling_replacements=config.max_sibling_replacements,
            rng=rng,
        )
    return miner.mine()
