"""A1 — Ablation: support-counting engines.

Times one generalized counting pass (the pipeline's inner loop) with each
engine — hash tree, first-item index, brute force — over identical
candidates, and asserts they return identical counts.

Run directly::

    python -m benchmarks.bench_ablation_counting
"""

import time

import pytest

from repro.core.candidates import generate_negative_candidates
from repro.core.session import MiningSession
from repro.mining.engines import engine_names
from repro.mining.generalized import mine_generalized

from .common import MINRI, dataset, support_sweep

MINSUP = support_sweep()[0]


def _setup(kind="short"):
    data = dataset(kind)
    index = mine_generalized(data.database, data.taxonomy, MINSUP)
    candidates = sorted(
        generate_negative_candidates(index, data.taxonomy, MINSUP, MINRI)
    )
    return data, candidates


@pytest.mark.parametrize("engine", engine_names())
def test_counting_engine(benchmark, engine):
    data, candidates = _setup()
    session = MiningSession(data.database, data.taxonomy, engine)

    def count():
        return session.count(candidates, restrict_to_candidate_items=True)

    counts = benchmark.pedantic(count, rounds=1, iterations=1)
    benchmark.extra_info.update(
        candidates=len(candidates),
        nonzero=sum(1 for value in counts.values() if value),
    )


def main() -> None:
    data, candidates = _setup()
    print(
        f"=== A1: counting engines over {len(candidates)} candidates, "
        f"|D|={len(data.database)} ==="
    )
    reference = None
    for engine in engine_names():
        session = MiningSession(data.database, data.taxonomy, engine)
        started = time.perf_counter()
        counts = session.count(
            candidates, restrict_to_candidate_items=True
        )
        elapsed = time.perf_counter() - started
        agrees = reference is None or counts == reference
        reference = reference or counts
        print(f"  {engine:<9} {elapsed:8.3f}s  agrees={agrees}")
    print("\nall engines must agree; timing differences are the ablation.")


if __name__ == "__main__":
    main()
