"""Future-work extension: substitute-item knowledge (paper Section 4.1).

The paper's taxonomy can only relate items under a common parent. Real
substitutes often live in different parts of the hierarchy — store-brand
cereal in the "value" aisle vs the name brand in "breakfast", butter
(dairy) vs margarine (spreads). This example declares such cross-taxonomy
substitutes explicitly and shows negative rules that the taxonomy alone
cannot find.

Run with::

    python examples/substitute_knowledge.py
"""

import random

from repro.core.candidates import generate_negative_candidates
from repro.core.negmining import select_negatives
from repro.core.rulegen import generate_negative_rules
from repro.core.substitutes import (
    SubstituteGroups,
    generate_substitute_candidates,
    merge_candidate_sets,
)
from repro.core.session import MiningSession
from repro.data.database import TransactionDatabase
from repro.mining.generalized import mine_generalized
from repro.taxonomy import taxonomy_from_nested

MINSUP = 0.05
MINRI = 0.4


def build_market(taxonomy, seed=5):
    """Toast lovers buy bread + a spread; butter buyers shun margarine's
    partner jam brand (a cross-category loyalty the taxonomy can't see)."""
    butter = taxonomy.id_of("CountryButter")
    margarine = taxonomy.id_of("SoftSpread")
    bread = taxonomy.id_of("WheatBread")
    jam = taxonomy.id_of("BerryJam")
    honey = taxonomy.id_of("ClearHoney")
    rng = random.Random(seed)
    rows = []
    for _ in range(4000):
        basket = set()
        if rng.random() < 0.6:
            basket.add(bread)
            spread = butter if rng.random() < 0.5 else margarine
            basket.add(spread)
            if rng.random() < 0.5:
                # Butter households buy jam; margarine households honey.
                if spread == butter:
                    basket.add(jam if rng.random() < 0.95 else honey)
                else:
                    basket.add(honey if rng.random() < 0.95 else jam)
        else:
            basket.add(rng.choice([jam, honey, bread]))
        rows.append(sorted(basket))
    return TransactionDatabase(rows)


def main() -> None:
    # Butter is dairy; margarine is in spreads — different parents, so
    # the taxonomy alone never relates them.
    taxonomy = taxonomy_from_nested(
        {
            "dairy": ["CountryButter", "WholeMilk"],
            "spreads": ["SoftSpread", "BerryJam", "ClearHoney"],
            "bakery": ["WheatBread", "Croissant"],
        }
    )
    database = build_market(taxonomy)
    substitutes = SubstituteGroups(
        [[taxonomy.id_of("CountryButter"), taxonomy.id_of("SoftSpread")]]
    )

    index = mine_generalized(database, taxonomy, MINSUP)
    taxonomy_candidates = generate_negative_candidates(
        index, taxonomy, MINSUP, MINRI
    )
    substitute_candidates = generate_substitute_candidates(
        index, substitutes, MINSUP, MINRI
    )
    merged = merge_candidate_sets(
        taxonomy_candidates, substitute_candidates
    )

    counts = MiningSession(database, taxonomy).count(list(merged))
    negatives = select_negatives(
        merged,
        counts,
        len(database),
        MINSUP,
        MINRI,
    )
    rules = generate_negative_rules(negatives, index, MINRI)

    print(f"taxonomy-only candidates   : {len(taxonomy_candidates)}")
    print(f"substitute candidates      : {len(substitute_candidates)}")
    print(f"merged                     : {len(merged)}")
    print(f"negative itemsets          : {len(negatives)}")
    print()
    print("rules (those from substitute knowledge marked *):")
    substitute_items = {
        items for items, candidate in merged.items()
        if candidate.case == "substitutes"
    }
    for rule in rules[:10]:
        marker = " *" if rule.items in substitute_items else ""
        print("  " + rule.format(taxonomy) + marker)


if __name__ == "__main__":
    main()
