"""A2 — Ablation: Basic vs Cumulate vs EstMerge generalized miners.

The paper delegates step 1 to "one of Basic, Cumulate or EstMerge"; this
ablation times all three on the same dataset and verifies that Cumulate
and EstMerge agree exactly (Basic additionally reports its redundant
item+ancestor itemsets).

Run directly::

    python -m benchmarks.bench_ablation_generalized
"""

import random
import time

import pytest

from repro.mining.generalized import ALGORITHMS, mine_generalized

from .common import dataset, support_sweep

MINSUP = support_sweep()[0]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_generalized_miner(benchmark, algorithm):
    data = dataset("short")

    def mine():
        return mine_generalized(
            data.database,
            data.taxonomy,
            MINSUP,
            algorithm=algorithm,
            rng=random.Random(0),
        )

    index = benchmark.pedantic(mine, rounds=1, iterations=1)
    benchmark.extra_info.update(
        large_itemsets=len(index),
        passes=data.database.scans,
    )
    data.database.reset_scans()


def main() -> None:
    data = dataset("short")
    print(
        f"=== A2: generalized miners at MinSup={MINSUP}, "
        f"|D|={len(data.database)} ==="
    )
    results = {}
    for algorithm in ALGORITHMS:
        data.database.reset_scans()
        started = time.perf_counter()
        index = mine_generalized(
            data.database,
            data.taxonomy,
            MINSUP,
            algorithm=algorithm,
            rng=random.Random(0),
        )
        elapsed = time.perf_counter() - started
        results[algorithm] = index
        print(
            f"  {algorithm:<9} {elapsed:8.3f}s  large={len(index):>6} "
            f"passes={data.database.scans}"
        )
    print(
        "\ncumulate == estmerge: "
        f"{results['cumulate'] == results['estmerge']}"
    )
    extras = len(results["basic"]) - len(results["cumulate"])
    print(f"basic reports {extras} extra (item+ancestor) itemsets")


if __name__ == "__main__":
    main()
