"""Golden regression values for the worked-example database.

Pins the exact numeric outputs of the full pipeline on the deterministic
Table-1 rendition (see test_paper_example): any change to counting,
expectation, dedup, thresholds or rule generation that shifts these
numbers — even slightly — fails here first.
"""

import pytest

from repro.core.api import mine_negative_rules
from repro.data.database import TransactionDatabase
from repro.taxonomy.builders import taxonomy_from_nested

GROUPS = [
    (("Bryers", "Evian"), 1200),
    (("Bryers", "Perrier"), 50),
    (("Bryers",), 750),
    (("Healthy Choice", "Evian"), 420),
    (("Healthy Choice", "Perrier"), 250),
    (("Healthy Choice",), 330),
    (("Evian",), 380),
    (("Perrier",), 500),
    (("Carbonated",), 6120),
]


@pytest.fixture(scope="module")
def mined():
    taxonomy = taxonomy_from_nested(
        {
            "Beverages": {
                "Carbonated": [],
                "NonCarbonated": {
                    "Bottled juices": [],
                    "Bottled water": ["Evian", "Perrier"],
                },
            },
            "Desserts": {
                "Ice creams": [],
                "Frozen yogurt": ["Bryers", "Healthy Choice"],
            },
        }
    )
    rows = [
        [taxonomy.id_of(name) for name in names]
        for names, count in GROUPS
        for _ in range(count)
    ]
    result = mine_negative_rules(
        TransactionDatabase(rows), taxonomy, minsup=0.04, minri=0.5
    )
    return taxonomy, result


class TestGoldenSupports:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("Bryers", 0.2),
            ("Healthy Choice", 0.1),
            ("Evian", 0.2),
            ("Perrier", 0.08),
            ("Frozen yogurt", 0.3),
            ("Bottled water", 0.28),
            ("Desserts", 0.3),
        ],
    )
    def test_single_supports(self, mined, name, expected):
        taxonomy, result = mined
        assert result.large_itemsets.support(
            (taxonomy.id_of(name),)
        ) == pytest.approx(expected)

    def test_category_pair_support(self, mined):
        taxonomy, result = mined
        pair = tuple(
            sorted(
                (
                    taxonomy.id_of("Frozen yogurt"),
                    taxonomy.id_of("Bottled water"),
                )
            )
        )
        assert result.large_itemsets.support(pair) == pytest.approx(0.192)


class TestGoldenRule:
    def test_perrier_bryers_rule_values(self, mined):
        taxonomy, result = mined
        perrier = taxonomy.id_of("Perrier")
        bryers = taxonomy.id_of("Bryers")
        rule = next(
            r
            for r in result.rules
            if r.antecedent == (perrier,) and r.consequent == (bryers,)
        )
        # Case-3 path from {Bryers, Evian}: 0.12 * 0.08/0.20 = 0.048.
        assert rule.expected_support == pytest.approx(0.048)
        assert rule.actual_support == pytest.approx(0.005)
        assert rule.antecedent_support == pytest.approx(0.08)
        assert rule.consequent_support == pytest.approx(0.2)
        assert rule.ri == pytest.approx((0.048 - 0.005) / 0.08)

    def test_reverse_direction_absent(self, mined):
        taxonomy, result = mined
        perrier = taxonomy.id_of("Perrier")
        bryers = taxonomy.id_of("Bryers")
        assert not any(
            r.antecedent == (bryers,) and r.consequent == (perrier,)
            for r in result.rules
        )

    def test_negative_itemset_provenance(self, mined):
        taxonomy, result = mined
        perrier = taxonomy.id_of("Perrier")
        bryers = taxonomy.id_of("Bryers")
        evian = taxonomy.id_of("Evian")
        pair = tuple(sorted((perrier, bryers)))
        negative = next(
            n for n in result.negative_itemsets if n.items == pair
        )
        assert negative.case == "siblings"
        assert negative.source == tuple(sorted((bryers, evian)))

    def test_total_counts_stable(self, mined):
        _taxonomy, result = mined
        assert result.stats.large_itemsets == 26
        assert result.stats.candidates_generated == 7
        assert result.stats.negative_itemsets == 7
        assert len(result.rules) == 7
