"""Unit tests for the Taxonomy forest."""

import pytest

from repro.errors import TaxonomyError
from repro.taxonomy.tree import Taxonomy


@pytest.fixture
def forest():
    """Two trees: 0 -> (1, 2), 2 -> (3, 4); 10 -> (11,); isolated 99."""
    return Taxonomy(
        {1: 0, 2: 0, 3: 2, 4: 2, 11: 10},
        names={0: "root-a", 2: "mid", 3: "leaf-3"},
        extra_roots=[99],
    )


class TestStructure:
    def test_roots(self, forest):
        assert forest.roots == (0, 10, 99)

    def test_leaves(self, forest):
        assert forest.leaves == {1, 3, 4, 11, 99}

    def test_categories(self, forest):
        assert forest.categories == {0, 2, 10}

    def test_len_counts_all_nodes(self, forest):
        assert len(forest) == 8

    def test_contains(self, forest):
        assert 3 in forest
        assert 50 not in forest

    def test_nodes_sorted(self, forest):
        assert forest.nodes == (0, 1, 2, 3, 4, 10, 11, 99)

    def test_iteration_order(self, forest):
        assert list(forest) == list(forest.nodes)


class TestRelationships:
    def test_parent(self, forest):
        assert forest.parent(3) == 2
        assert forest.parent(0) is None

    def test_children_sorted(self, forest):
        assert forest.children(0) == (1, 2)
        assert forest.children(2) == (3, 4)

    def test_children_of_leaf_empty(self, forest):
        assert forest.children(4) == ()

    def test_siblings(self, forest):
        assert forest.siblings(3) == (4,)
        assert forest.siblings(1) == (2,)

    def test_siblings_of_root_empty(self, forest):
        assert forest.siblings(0) == ()
        assert forest.siblings(99) == ()

    def test_ancestors_nearest_first(self, forest):
        assert forest.ancestors(3) == (2, 0)
        assert forest.ancestors(0) == ()

    def test_is_ancestor(self, forest):
        assert forest.is_ancestor(0, 3)
        assert forest.is_ancestor(2, 4)
        assert not forest.is_ancestor(3, 0)
        assert not forest.is_ancestor(10, 3)

    def test_depth_and_height(self, forest):
        assert forest.depth(0) == 0
        assert forest.depth(3) == 2
        assert forest.height == 2

    def test_descendants(self, forest):
        assert forest.descendants(0) == (1, 2, 3, 4)
        assert forest.descendants(4) == ()

    def test_leaf_descendants_of_category(self, forest):
        assert forest.leaf_descendants(0) == (1, 3, 4)

    def test_leaf_descendants_of_leaf_is_itself(self, forest):
        assert forest.leaf_descendants(99) == (99,)

    def test_is_leaf(self, forest):
        assert forest.is_leaf(99)
        assert not forest.is_leaf(2)

    def test_fanout(self, forest):
        # Internal nodes 0 (2 children), 2 (2), 10 (1) -> 5/3.
        assert forest.fanout() == pytest.approx(5 / 3)

    def test_unknown_node_raises(self, forest):
        with pytest.raises(TaxonomyError):
            forest.parent(1234)
        with pytest.raises(TaxonomyError):
            forest.children(1234)


class TestAncestorClosure:
    def test_closure_adds_all_ancestors(self, forest):
        assert forest.ancestor_closure([3]) == {3, 2, 0}

    def test_closure_of_multiple_items(self, forest):
        assert forest.ancestor_closure([3, 11]) == {3, 2, 0, 11, 10}

    def test_closure_of_root_is_itself(self, forest):
        assert forest.ancestor_closure([99]) == {99}

    def test_closure_unknown_item_raises(self, forest):
        with pytest.raises(TaxonomyError):
            forest.ancestor_closure([1234])


class TestNames:
    def test_name_of_named_node(self, forest):
        assert forest.name_of(0) == "root-a"

    def test_name_of_unnamed_node_falls_back(self, forest):
        assert forest.name_of(4) == "item:4"

    def test_id_of(self, forest):
        assert forest.id_of("mid") == 2

    def test_id_of_unknown_raises(self, forest):
        with pytest.raises(TaxonomyError):
            forest.id_of("nope")

    def test_format_itemset(self, forest):
        assert forest.format_itemset([3, 4]) == "{leaf-3, item:4}"

    def test_duplicate_names_rejected(self):
        with pytest.raises(TaxonomyError):
            Taxonomy({1: 0}, names={0: "x", 1: "x"})


class TestValidation:
    def test_self_parent_rejected(self):
        with pytest.raises(TaxonomyError):
            Taxonomy({1: 1})

    def test_cycle_rejected(self):
        with pytest.raises(TaxonomyError):
            Taxonomy({1: 2, 2: 3, 3: 1})

    def test_two_node_cycle_rejected(self):
        with pytest.raises(TaxonomyError):
            Taxonomy({1: 2, 2: 1})

    def test_empty_taxonomy_allowed(self):
        empty = Taxonomy({})
        assert len(empty) == 0
        assert empty.height == 0

    def test_exports_round_trip(self, forest):
        rebuilt = Taxonomy(
            forest.parent_map(),
            names=forest.names_map(),
            extra_roots=[99],
        )
        assert rebuilt.nodes == forest.nodes
        assert rebuilt.leaves == forest.leaves

    def test_repr_mentions_counts(self, forest):
        text = repr(forest)
        assert "nodes=8" in text
        assert "leaves=5" in text
