"""The ``mmap`` engine: out-of-core counting over spilled segments.

Counts through a :class:`~repro.mining.segmatrix.SegmentedPackedMatrix`:
the database is packed once into per-segment ``uint64`` word blocks
spilled under a temporary directory, and each pass streams the segments
through a bounded resident set of ``np.memmap`` blocks — the only engine
whose peak memory is a policy knob (``max_resident_bytes`` /
``--max-resident``) instead of a function of |D|. Per-segment
fingerprints make maintenance incremental: appending transactions
extends the tail segment in place and reuses every other block
untouched, so the matrix — like the vertical cache — is kept up to date
in O(append), not O(|D|).

The module is named ``outofcore`` (not ``mmap``) so it never shadows the
stdlib :mod:`mmap` that NumPy's memmap machinery imports.
"""

from __future__ import annotations

from collections.abc import Collection

from ...errors import ConfigError
from ...itemset import Itemset
from ..segmatrix import SegmentedPackedMatrix
from .base import (
    Capabilities,
    CountingEngine,
    EnginePolicy,
    EngineState,
    register_engine,
)


@register_engine("mmap")
class MmapEngine(CountingEngine):
    """Segmented mmap-backed counting with bounded resident bytes.

    The segmented matrix is owned by the engine (like the shm engine's
    published matrix, not like the database-attached vertical cache) and
    persists across passes: each ``count()`` synchronizes it against the
    source — a no-op on an unchanged database, an O(append) tail
    extension after ``database.append(...)``, a fingerprint-guided
    repack otherwise — then records one logical pass and streams the
    segment blocks. Plain row iterables get a one-shot matrix that is
    closed before returning. Taxonomy candidates are matched by
    descendant-OR per segment, so ``restrict_to_candidate_items`` is
    moot, exactly as for the ``numpy``/``cached`` engines.
    """

    capabilities = Capabilities(
        packed=True,
        caching=True,
        shardable=True,
        needs_numpy=True,
        out_of_core=True,
    )

    def __init__(
        self,
        segment_rows: int | None = None,
        max_resident_bytes: int | None = None,
        spill_dir: str | None = None,
        batch_words: int | None = None,
    ) -> None:
        self.segment_rows = segment_rows
        self.max_resident_bytes = max_resident_bytes
        self.spill_dir = spill_dir
        self.batch_words = batch_words
        self._matrix: SegmentedPackedMatrix | None = None

    @classmethod
    def from_policy(
        cls, policy: EnginePolicy, inner=None
    ) -> "MmapEngine":
        cls._reject_inner(inner)
        from .parallel import _numpy_available

        if not _numpy_available():
            raise ConfigError(
                "engine 'mmap' requires NumPy (segments are bit-packed "
                "word blocks); install numpy or choose a pure-Python "
                "engine"
            )
        return cls(
            segment_rows=policy.segment_rows,
            max_resident_bytes=policy.max_resident_bytes,
            spill_dir=policy.spill_dir,
            batch_words=policy.batch_words,
        )

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Drop the segmented matrix and its spill directory."""
        matrix, self._matrix = self._matrix, None
        if matrix is not None:
            matrix.close()

    def __del__(self) -> None:  # pragma: no cover — GC timing
        try:
            self.close()
        except Exception:
            pass

    def __getstate__(self):
        # Workers counting plain row shards rebuild their own one-shot
        # matrices; the parent-owned matrix (spill dir, finalizer, LRU)
        # never crosses a pipe.
        return (
            self.segment_rows, self.max_resident_bytes, self.spill_dir,
            self.batch_words,
        )

    def __setstate__(self, state):
        (
            self.segment_rows, self.max_resident_bytes, self.spill_dir,
            self.batch_words,
        ) = state
        self._matrix = None

    # -- counting ------------------------------------------------------

    def matrix_for(self, source, cache_stats=None) -> SegmentedPackedMatrix:
        """The engine's segmented matrix, synchronized with *source*."""
        if self._matrix is None or self._matrix.closed:
            self._matrix = SegmentedPackedMatrix(
                segment_rows=self.segment_rows,
                max_resident_bytes=self.max_resident_bytes,
                spill_dir=self.spill_dir,
            )
        self._matrix.sync(source, stats=cache_stats)
        return self._matrix

    def count(
        self,
        state: EngineState,
        candidates: Collection[Itemset],
        *,
        restrict_to_candidate_items: bool = False,
        cache_stats=None,
        parallel_stats=None,
    ) -> dict[Itemset, int]:
        source = state.transactions
        if hasattr(source, "scan"):
            matrix = self.matrix_for(source, cache_stats)
            source.count_logical_pass()
            return matrix.count(
                candidates,
                taxonomy=state.taxonomy,
                batch_words=self.batch_words,
                stats=cache_stats,
            )
        if cache_stats is not None:
            cache_stats.misses += 1
        with SegmentedPackedMatrix.from_rows(
            source,
            segment_rows=self.segment_rows,
            max_resident_bytes=self.max_resident_bytes,
            spill_dir=self.spill_dir,
            stats=cache_stats,
        ) as matrix:
            return matrix.count(
                candidates,
                taxonomy=state.taxonomy,
                batch_words=self.batch_words,
                stats=cache_stats,
            )
