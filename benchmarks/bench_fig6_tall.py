"""E2 — Figure 6: execution times on the "Tall" data set.

Same sweep as Figure 5 but on the fan-out-3 ("Tall") taxonomy. The paper
reports (a) Improved beating Naive throughout and (b) the Tall data set
taking *longer* overall than Short because far more generalized large
itemsets exist (15,476 vs 1,499 at 1.5 % support).

Run directly for the full series::

    python -m benchmarks.bench_fig6_tall
"""

import pytest

from repro.mining.generalized import mine_generalized

from .common import dataset, support_sweep
from .sweep import (
    improved_negative_phase,
    naive_negative_phase,
    print_figure,
    run_sweep,
)

MINSUPS = support_sweep()


@pytest.fixture(scope="module")
def tall_dataset():
    return dataset("tall")


@pytest.mark.parametrize("minsup", MINSUPS)
def test_fig6_improved(benchmark, tall_dataset, minsup):
    index = mine_generalized(
        tall_dataset.database, tall_dataset.taxonomy, minsup
    )
    point = benchmark.pedantic(
        improved_negative_phase,
        args=(tall_dataset, minsup, index),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        candidates=point.candidates,
        negatives=point.negatives,
        rules=point.rules,
        large_itemsets=point.large_itemsets,
    )


@pytest.mark.parametrize("minsup", MINSUPS)
def test_fig6_naive(benchmark, tall_dataset, minsup):
    point = benchmark.pedantic(
        naive_negative_phase,
        args=(tall_dataset, minsup),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        candidates=point.candidates,
        negatives=point.negatives,
        rules=point.rules,
    )


def main() -> None:
    points = run_sweep(dataset("tall"), MINSUPS)
    print_figure(
        points, 'Figure 6: execution times, "Tall" data set (fan-out 3)'
    )
    improved = {p.minsup: p.seconds for p in points
                if p.algorithm == "improved"}
    naive = {p.minsup: p.seconds for p in points if p.algorithm == "naive"}
    wins = sum(
        1 for minsup in improved if improved[minsup] <= naive[minsup]
    )
    print(
        f"\nshape check: improved wins at {wins}/{len(improved)} "
        "support levels (paper: all levels)"
    )


if __name__ == "__main__":
    main()
