"""Random sampling of transaction databases.

The *EstMerge* generalized miner (Srikant & Agrawal) estimates candidate
supports on a sample before deciding which candidates to count over the full
database. Sampling reads the whole database once and therefore counts as a
pass.
"""

from __future__ import annotations

import random

from ..errors import ConfigError
from .database import TransactionDatabase


def sample_database(
    database: TransactionDatabase,
    fraction: float,
    rng: random.Random | None = None,
) -> TransactionDatabase:
    """Return a simple random sample of *database*.

    Parameters
    ----------
    database:
        Source transactions.
    fraction:
        Sampling fraction in ``(0, 1]``. At least one transaction is always
        retained so the sample is a valid database.
    rng:
        Optional :class:`random.Random` for reproducibility; a fresh
        generator is used otherwise.

    Notes
    -----
    The source database's scan counter is incremented: drawing the sample is
    a pass over the data.
    """
    if not 0.0 < fraction <= 1.0:
        raise ConfigError(f"sample fraction must be in (0, 1], got {fraction}")
    rng = rng or random.Random()
    picked = [row for row in database.scan() if rng.random() < fraction]
    if not picked:
        # Degenerate draw on tiny databases: fall back to one random row.
        rows = list(database)
        picked = [rows[rng.randrange(len(rows))]]
    return TransactionDatabase(picked)
