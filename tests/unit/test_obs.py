"""Unit tests for the observability layer (:mod:`repro.obs`).

Covers the metric registry (merge semantics, pickling), span nesting
and timing, the zero-allocation disabled path, the trace/summary sinks,
session install/restore semantics, the registry-backed stats adapters,
and the parallel == serial metric-totals invariant.
"""

import gc
import json
import pickle
import sys
from io import StringIO

import pytest

from repro.data.database import TransactionDatabase
from repro.errors import ConfigError
from repro.core.session import MiningSession
from repro.mining.vertical import CacheStats
from repro.obs import api as obs
from repro.obs.registry import (
    DEFAULT_BOUNDS,
    Histogram,
    MetricsRegistry,
    stats_property,
)
from repro.obs.span import NULL_SPAN
from repro.parallel.engine import ParallelStats


@pytest.fixture(autouse=True)
def _obs_disabled():
    """Every test starts and ends with observability off."""
    obs.detach()
    yield
    obs.detach()


def small_rows():
    return [[1, 2], [1, 3], [2, 3], [1, 2, 3], [4], [1, 4]] * 20


# ----------------------------------------------------------------------
# Histogram
# ----------------------------------------------------------------------
class TestHistogram:
    def test_rejects_empty_bounds(self):
        with pytest.raises(ConfigError):
            Histogram(())

    def test_rejects_non_increasing_bounds(self):
        with pytest.raises(ConfigError):
            Histogram((1.0, 1.0, 2.0))

    def test_bucket_placement_and_mean(self):
        histogram = Histogram((1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 100.0):
            histogram.observe(value)
        assert histogram.buckets == [2, 1, 1]  # <=1, <=10, overflow
        assert histogram.count == 4
        assert histogram.mean == pytest.approx(106.5 / 4)

    def test_merge_adds_bucketwise(self):
        one, two = Histogram((1.0,)), Histogram((1.0,))
        one.observe(0.5)
        two.observe(2.0)
        two.observe(0.25)
        one.merge(two)
        assert one.buckets == [2, 1]
        assert one.count == 3
        assert one.sum == pytest.approx(2.75)

    def test_merge_rejects_mismatched_bounds(self):
        with pytest.raises(ConfigError):
            Histogram((1.0,)).merge(Histogram((2.0,)))


# ----------------------------------------------------------------------
# MetricsRegistry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.incr("passes")
        registry.incr("passes", 2)
        registry.set_gauge("bytes", 10.0)
        registry.max_gauge("bytes", 5.0)  # not a new high-water mark
        registry.observe("span.count", 0.25)
        assert registry.counter("passes") == 3
        assert registry.counter("never") == 0
        assert registry.gauge("bytes") == 10.0
        assert registry.histogram("span.count").count == 1
        assert registry.names() == ["bytes", "passes", "span.count"]

    def test_merge_semantics(self):
        ours, theirs = MetricsRegistry(), MetricsRegistry()
        ours.incr("n", 2)
        theirs.incr("n", 3)
        ours.set_gauge("peak", 7.0)
        theirs.set_gauge("peak", 5.0)
        ours.observe("h", 0.5)
        theirs.observe("h", 2.0)
        ours.merge(theirs)
        assert ours.counter("n") == 5  # counters add
        assert ours.gauge("peak") == 7.0  # gauges keep the max
        assert ours.histogram("h").count == 2  # histograms merge

    def test_pickled_worker_registry_merges_like_local(self):
        """The pool ships registries by pickle; totals must survive."""
        worker = MetricsRegistry()
        worker.incr("worker.counting.passes", 4)
        worker.set_gauge("worker.cache.bytes", 123.0)
        worker.observe("span.parallel.shard", 0.01)
        shipped = pickle.loads(pickle.dumps(worker))

        direct, via_pickle = MetricsRegistry(), MetricsRegistry()
        direct.merge(worker)
        via_pickle.merge(shipped)
        assert direct.snapshot() == via_pickle.snapshot()

    def test_snapshot_and_json_round_trip(self):
        registry = MetricsRegistry()
        registry.incr("a")
        registry.observe("h", 0.2)
        decoded = json.loads(registry.to_json())
        assert decoded["counters"] == {"a": 1}
        assert decoded["histograms"]["h"]["count"] == 1

    def test_summary_lists_every_metric(self):
        registry = MetricsRegistry()
        assert registry.summary() == "(no metrics recorded)"
        registry.incr("counting.passes", 9)
        registry.set_gauge("cache.bytes", 64.0)
        registry.observe("span.count.bitmap", 0.5)
        text = registry.summary()
        assert "counting.passes" in text
        assert "cache.bytes" in text
        assert "span.count.bitmap" in text


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_nesting_depth_and_parent(self):
        with obs.obs_session(registry=MetricsRegistry()) as state:
            with obs.span("outer") as outer:
                with obs.span("middle") as middle:
                    with obs.span("inner") as inner:
                        assert state.in_span("out")
                        assert state.in_span("inner")
                        assert not state.in_span("count.")
            assert outer.depth == 0 and outer.parent is None
            assert middle.depth == 1 and middle.parent == "outer"
            assert inner.depth == 2 and inner.parent == "middle"
            assert state._stack == []

    def test_timing_monotonicity(self):
        with obs.obs_session(registry=MetricsRegistry()):
            with obs.span("outer") as outer:
                with obs.span("inner") as inner:
                    total = 0
                    for i in range(10_000):
                        total += i
        assert inner.wall_s >= 0.0
        assert outer.wall_s >= inner.wall_s  # child nested inside parent
        assert outer.cpu_s >= 0.0

    def test_span_durations_feed_histograms(self):
        registry = MetricsRegistry()
        with obs.obs_session(registry=registry):
            for _ in range(3):
                with obs.span("count.bitmap"):
                    pass
        histogram = registry.histogram("span.count.bitmap")
        assert histogram.count == 3
        assert histogram.sum >= 0.0

    def test_annotate_add_and_error_attr(self):
        with obs.obs_session(registry=MetricsRegistry()):
            with pytest.raises(ValueError):
                with obs.span("work") as span:
                    span.annotate("rows", 5)
                    span.add("batches", 2)
                    span.add("batches", 3)
                    raise ValueError("boom")
        assert span.attrs["rows"] == 5
        assert span.attrs["batches"] == 5
        assert span.attrs["error"] == "ValueError"

    def test_disabled_span_is_the_null_singleton(self):
        assert obs.span("anything") is NULL_SPAN
        with obs.span("anything") as span:
            span.annotate("ignored", 1)
            span.add("ignored", 1)
        assert span is NULL_SPAN

    def test_disabled_path_allocates_nothing(self):
        """The no-op path must not allocate per call (gc can't hide it)."""
        def hot_loop(n):
            for _ in range(n):
                with obs.span("count.noop") as span:
                    span.annotate("rows", 1)
                obs.incr("counting.passes")
                obs.observe("h", 0.1)
                obs.max_gauge("g", 1.0)

        hot_loop(10)  # warm up any lazy caches
        gc.collect()
        gc.disable()
        try:
            before = sys.getallocatedblocks()
            hot_loop(10_000)
            after = sys.getallocatedblocks()
        finally:
            gc.enable()
        assert after - before <= 2  # zero per-iteration allocations


# ----------------------------------------------------------------------
# Sessions
# ----------------------------------------------------------------------
class TestObsSession:
    def test_noop_session_installs_nothing(self):
        with obs.obs_session() as state:
            assert state is None
            assert not obs.enabled()

    def test_session_installs_and_restores(self):
        assert not obs.enabled()
        with obs.obs_session(registry=MetricsRegistry()) as state:
            assert obs.enabled()
            assert obs.current() is state
            assert obs.active_registry() is state.registry
        assert not obs.enabled()
        assert obs.active_registry() is None

    def test_nested_sessions_restore_the_outer_state(self):
        with obs.obs_session(registry=MetricsRegistry()) as outer:
            with obs.obs_session(registry=MetricsRegistry()) as inner:
                assert obs.current() is inner
            assert obs.current() is outer

    def test_invalid_metrics_mode_raises(self):
        with pytest.raises(ConfigError):
            with obs.obs_session(metrics="verbose"):
                pass

    def test_worker_collection_scopes_and_restores(self):
        with obs.worker_collection() as registry:
            assert obs.current().scope == "worker"
            obs.incr("worker.counting.passes")
        assert not obs.enabled()
        assert registry.counter("worker.counting.passes") == 1

    def test_detach_disables_without_finishing_sinks(self):
        obs.configure(registry=MetricsRegistry())
        assert obs.enabled()
        obs.detach()
        assert not obs.enabled()


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
class TestSinks:
    def test_jsonl_trace_is_valid_json_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with obs.obs_session(trace_path=str(path)) as state:
            state.registry.incr("counting.passes")
            with obs.span("count.bitmap") as span:
                span.annotate("candidates", 7)
                with obs.span("cache.build"):
                    pass
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert len(records) == 3
        spans = [r for r in records if r["type"] == "span"]
        assert [r["name"] for r in spans] == ["cache.build", "count.bitmap"]
        child, parent = spans
        assert child["parent"] == "count.bitmap" and child["depth"] == 1
        assert parent["attrs"] == {"candidates": 7}
        assert parent["scope"] == "driver"
        final = records[-1]
        assert final["type"] == "metrics"
        assert final["metrics"]["counters"]["counting.passes"] == 1

    def test_summary_sink_writes_to_stream(self):
        stream = StringIO()
        with obs.obs_session(metrics="summary", stream=stream) as state:
            state.registry.incr("mine.runs")
        assert "mine.runs" in stream.getvalue()

    def test_json_metrics_mode_emits_one_document(self):
        stream = StringIO()
        with obs.obs_session(metrics="json", stream=stream) as state:
            state.registry.incr("mine.runs", 2)
        decoded = json.loads(stream.getvalue())
        assert decoded["counters"]["mine.runs"] == 2


# ----------------------------------------------------------------------
# Registry-backed stats adapters
# ----------------------------------------------------------------------
class TestStatsAdapters:
    def test_cache_stats_keyword_ctor_and_arithmetic(self):
        stats = CacheStats(hits=3, misses=1)
        stats.hits += 2
        assert stats.hits == 5
        assert stats.hit_rate == pytest.approx(5 / 6)
        assert CacheStats().hit_rate == 0.0

    def test_cache_stats_rejects_unknown_fields(self):
        with pytest.raises(TypeError):
            CacheStats(frobs=1)

    def test_adapter_writes_land_in_the_registry(self):
        registry = MetricsRegistry()
        stats = CacheStats(registry=registry, prefix="worker.")
        stats.hits += 4
        stats.bytes = 1024
        assert registry.counter("worker.cache.hits") == 4
        assert registry.gauge("worker.cache.bytes") == 1024
        parallel = ParallelStats(registry=registry)
        parallel.shards += 2
        assert registry.counter("parallel.shards") == 2

    def test_stats_property_kinds(self):
        class View:
            __slots__ = ("registry", "_prefix")
            tally = stats_property("tally")
            peak = stats_property("peak", kind="gauge")

            def __init__(self, registry):
                self.registry = registry
                self._prefix = ""

        view = View(MetricsRegistry())
        view.tally += 3
        view.peak = 9.5
        assert view.tally == 3
        assert view.peak == 9  # gauge reads back as int


# ----------------------------------------------------------------------
# Parallel == serial metric totals
# ----------------------------------------------------------------------
class TestParallelTotals:
    CANDIDATES = ((1,), (2,), (4,), (1, 2), (2, 3), (1, 2, 3))

    def _driver_counters(self, n_jobs):
        registry = MetricsRegistry()
        database = TransactionDatabase(small_rows())
        session = MiningSession(database, engine="bitmap", n_jobs=n_jobs)
        with obs.obs_session(registry=registry):
            counts = session.count(list(self.CANDIDATES))
        driver = {
            name: registry.counter(name)
            for name in registry.names()
            if name.startswith("counting.")
        }
        return counts, driver, registry, session

    def test_parallel_equals_serial_driver_totals(self):
        serial_counts, serial_driver, _, _ = self._driver_counters(1)
        parallel_counts, parallel_driver, parallel_registry, session = (
            self._driver_counters(2)
        )
        assert parallel_counts == serial_counts
        assert serial_driver == parallel_driver  # bit-identical
        assert serial_driver["counting.passes"] == 1
        assert serial_driver["counting.candidates"] == len(self.CANDIDATES)
        assert serial_driver["counting.rows"] == len(small_rows())
        # Worker-side activity lands under worker.*, never counting.*.
        worker = [
            name
            for name in parallel_registry.names()
            if name.startswith("worker.")
        ]
        assert worker  # shipped back and merged
        # Driver-side shard accounting stays in the session's per-run
        # stats until publish_run folds it into the obs registry.
        assert session.parallel_stats.shards == 2
        assert parallel_registry.counter("parallel.shards") == 0
