"""Convenience scoring of mined rules with the classical measures.

The paper's RI footnote acknowledges other interestingness factors; these
helpers attach the standard ones (lift, leverage, conviction, chi-square,
negative confidence) to the rule objects produced by the miners so that
reports can rank or filter on any of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    # Annotation-only: importing repro.core here at runtime would close
    # an import cycle (core.negmining -> measures.registry -> measures
    # package -> this module -> core.rulegen -> core.negmining).
    from ..core.rulegen import NegativeRule
    from ..mining.rules import AssociationRule

from .metrics import (
    chi_square,
    confidence,
    conviction,
    leverage,
    lift,
    negative_confidence,
)


@dataclass(frozen=True, slots=True)
class RuleScores:
    """All classical measures for one rule (positive or negative).

    ``measures`` optionally carries the registered interestingness
    measures' scores for the same rule (``{"ri": …, "kong-interest":
    …}``, see :mod:`repro.measures.compare`); it is ``None`` — and
    absent from :meth:`as_dict` — unless a caller asked for them, so
    existing reports keep their exact shape.
    """

    confidence: float
    negative_confidence: float
    lift: float
    leverage: float
    conviction: float
    chi_square: float
    measures: dict[str, float] | None = None

    def as_dict(self) -> dict[str, float]:
        """The scores as a plain dict, e.g. for CSV or JSON reports."""
        payload = {
            "confidence": self.confidence,
            "negative_confidence": self.negative_confidence,
            "lift": self.lift,
            "leverage": self.leverage,
            "conviction": self.conviction,
            "chi_square": self.chi_square,
        }
        if self.measures is not None:
            payload["measures"] = dict(self.measures)
        return payload


def score_negative_rule(
    rule: NegativeRule, transactions: int, include_measures: bool = False
) -> RuleScores:
    """Score a negative rule from its recorded supports.

    Parameters
    ----------
    rule:
        A rule from :func:`repro.core.rulegen.generate_negative_rules`.
    transactions:
        |D|, for the chi-square statistic.
    include_measures:
        Also evaluate every registered interestingness measure's
        :meth:`~repro.measures.registry.InterestMeasure.rule_score` on
        the rule's recorded supports and attach the results as
        :attr:`RuleScores.measures`.

    Notes
    -----
    A strong negative rule typically shows lift < 1, leverage < 0,
    conviction < 1 and a high negative confidence — the classical
    signatures of negative correlation.
    """
    measures = None
    if include_measures:
        from .registry import create_measure, measure_names

        measures = {
            name: create_measure(name).rule_score(
                rule.expected_support,
                rule.actual_support,
                rule.antecedent_support,
                rule.consequent_support,
            )
            for name in measure_names()
        }
    return _score(
        rule.antecedent_support,
        rule.consequent_support,
        rule.actual_support,
        transactions,
        measures=measures,
    )


def score_positive_rule(
    rule: AssociationRule, consequent_support: float, transactions: int
) -> RuleScores:
    """Score a positive rule; needs the consequent's own support.

    :class:`~repro.mining.rules.AssociationRule` does not carry the
    consequent's marginal support, so it is passed explicitly (available
    from the :class:`~repro.mining.itemset_index.LargeItemsetIndex` the
    rule came from).
    """
    antecedent_support = rule.support / rule.confidence
    return _score(
        antecedent_support, consequent_support, rule.support, transactions
    )


def _score(
    sup_x: float,
    sup_y: float,
    sup_xy: float,
    transactions: int,
    measures: dict[str, float] | None = None,
) -> RuleScores:
    return RuleScores(
        confidence=confidence(sup_x, sup_xy),
        negative_confidence=negative_confidence(sup_x, sup_xy),
        lift=lift(sup_x, sup_y, sup_xy),
        leverage=leverage(sup_x, sup_y, sup_xy),
        conviction=conviction(sup_x, sup_y, sup_xy),
        chi_square=chi_square(sup_x, sup_y, sup_xy, transactions),
        measures=measures,
    )
