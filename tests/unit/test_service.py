"""Unit tests for the rule-serving service and its asyncio server."""

import asyncio
import json

import pytest

from repro.errors import ServingError
from repro.obs.api import obs_session
from repro.obs.registry import MetricsRegistry
from repro.serve import LRUCache, RuleIndex, RuleService, SelectiveContext
from repro.serve.service import dispatch, start_server
from repro.data.database import TransactionDatabase
from repro.taxonomy.builders import taxonomy_from_nested

from .test_rule_index import negative, positive


class TestLRUCache:
    def test_hit_and_miss_counting(self):
        cache = LRUCache(maxsize=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1
        assert cache.misses == 1

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a"; "b" becomes the LRU entry
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache

    def test_zero_size_disables_caching(self):
        cache = LRUCache(maxsize=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ServingError):
            LRUCache(maxsize=-1)

    def test_hits_and_misses_reach_the_metrics_registry(self):
        registry = MetricsRegistry()
        with obs_session(registry=registry):
            cache = LRUCache(maxsize=4, metric_prefix="serve.cache")
            cache.get("a")
            cache.put("a", 1)
            cache.get("a")
        assert registry.counter("serve.cache.misses") == 1
        assert registry.counter("serve.cache.hits") == 1


@pytest.fixture
def taxonomy():
    return taxonomy_from_nested(
        {"drinks": {"soda": ["cola", "lemonade"], "water": ["still"]}}
    )


@pytest.fixture
def service(taxonomy):
    cola = taxonomy.id_of("cola")
    still = taxonomy.id_of("still")
    soda = taxonomy.id_of("soda")
    water = taxonomy.id_of("water")
    index = RuleIndex(
        negative_rules=[negative([soda], [water], ri=1.2)],
        positive_rules=[positive([still], [cola], confidence=0.9)],
        taxonomy=taxonomy,
    )
    return RuleService(index, cache_size=8)


class TestScore:
    def test_taxonomy_aware_match(self, service, taxonomy):
        # cola expands to soda; the {soda} =/=> {water} rule fires.
        result = service.score(["cola"])
        kinds = [match["kind"] for match in result["matches"]]
        assert kinds == ["negative"]
        assert result["total_matches"] == 1

    def test_name_and_id_baskets_are_the_same_request(self, service,
                                                      taxonomy):
        by_name = service.score(["cola", "still"])
        by_id = service.score(
            [taxonomy.id_of("cola"), taxonomy.id_of("still")]
        )
        assert by_name == by_id
        assert service.stats()["cache_hits"] == 1

    def test_limit_truncates_but_reports_total(self, service):
        result = service.score(["cola", "still"], limit=1)
        assert len(result["matches"]) == 1
        assert result["total_matches"] == 2

    def test_unknown_name_rejected(self, service):
        with pytest.raises(ServingError):
            service.score(["cola", "no-such-item"])

    def test_non_list_basket_rejected(self, service):
        with pytest.raises(ServingError):
            service.score("cola")

    def test_unknown_ids_match_nothing(self, service):
        assert service.score([987654])["matches"] == []

    def test_score_batch(self, service):
        result = service.score_batch([["cola"], [], ["still"]])
        assert len(result["results"]) == 3
        assert result["results"][1]["matches"] == []

    def test_select_unavailable_without_context(self, service):
        with pytest.raises(ServingError):
            service.select("cola")


class TestDispatch:
    def test_ping(self, service):
        assert dispatch(service, {"op": "ping"})["ok"] is True

    def test_unknown_op_is_an_error_response(self, service):
        response = dispatch(service, {"op": "frobnicate"})
        assert "error" in response

    def test_library_errors_become_error_responses(self, service):
        response = dispatch(service, {"op": "score", "basket": "oops"})
        assert "error" in response

    def test_stats(self, service):
        service.score(["cola"])
        stats = dispatch(service, {"op": "stats"})
        assert stats["rules"] == 2
        assert stats["requests"] == 1
        assert stats["selective_available"] is False


class TestSelectEndpoint:
    def test_select_mines_and_caches(self, taxonomy):
        cola = taxonomy.id_of("cola")
        lemonade = taxonomy.id_of("lemonade")
        still = taxonomy.id_of("still")
        rows = [[cola, still]] * 40 + [[lemonade]] * 40 + [[cola]] * 20
        database = TransactionDatabase(rows)
        index = RuleIndex(taxonomy=taxonomy)
        service = RuleService(
            index,
            selective=SelectiveContext(
                database=database, taxonomy=taxonomy,
                minsup=0.2, minri=0.3,
            ),
        )
        first = service.select("lemonade")
        assert first["negative_rules"]  # the planted anti-correlation
        again = service.select(lemonade)
        assert again == first
        assert service.stats()["selective_hits"] == 1


def _roundtrip(host, port, payload):
    async def _go():
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(json.dumps(payload).encode() + b"\n")
        await writer.drain()
        line = await reader.readline()
        writer.close()
        await writer.wait_closed()
        return json.loads(line.decode())

    return _go


class TestAsyncServer:
    def test_concurrent_scoring_hits_the_lru(self, service):
        registry = MetricsRegistry()

        async def _run():
            server = await start_server(service, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            try:
                basket = {"op": "score", "basket": ["cola", "still"]}
                responses = await asyncio.gather(
                    *[_roundtrip(host, port, basket)() for _ in range(8)]
                )
            finally:
                server.close()
                await server.wait_closed()
            return responses

        with obs_session(registry=registry):
            responses = asyncio.run(_run())

        assert all(response == responses[0] for response in responses)
        assert responses[0]["total_matches"] == 2
        # 8 identical requests: the first misses, the rest hit the LRU.
        assert registry.counter("serve.cache.hits") == 7
        assert registry.counter("serve.cache.misses") == 1
        assert registry.counter("serve.requests") == 8
        assert service.stats()["cache_hits"] == 7

    def test_malformed_and_non_object_requests(self, service):
        async def _run():
            server = await start_server(service, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            try:
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"this is not json\n")
                writer.write(b"[1, 2, 3]\n")
                writer.write(
                    json.dumps({"op": "ping"}).encode() + b"\n"
                )
                await writer.drain()
                lines = [await reader.readline() for _ in range(3)]
                writer.close()
                await writer.wait_closed()
            finally:
                server.close()
                await server.wait_closed()
            return [json.loads(line.decode()) for line in lines]

        malformed, non_object, ping = asyncio.run(_run())
        assert "error" in malformed
        assert "error" in non_object
        assert ping["ok"] is True
