"""The ``"parallel"`` counting engine and the parallel Partition driver.

Support counting is a sum over transactions, so it shards trivially: split
the rows of one pass into contiguous ranges, count every candidate inside
each shard with a serial engine (bitmap by default), and sum the partial
counts. Integer addition is associative and commutative, and partials are
merged in shard order anyway, so the result is bit-identical to a serial
count (property-tested against the brute-force oracle).

The same structure parallelizes the Partition algorithm (Savasere,
Omiecinski & Navathe, VLDB 1995 — the authors' own miner,
:mod:`repro.mining.partition`): phase 1 mines each shard's local large
itemsets in its own worker, phase 2 counts the merged candidate union with
the sharded engine. Exactly two passes over the parent database are
recorded, the same as the serial driver.

Everything here degrades gracefully: ``n_jobs=1`` (or a single shard)
runs serially in-process with no worker transport, and worker failures
follow :class:`repro.parallel.pool.WorkerPool`'s retry-then-serial ladder.
"""

from __future__ import annotations

from collections.abc import Collection, Iterable

from .._util import check_fraction
from ..itemset import Itemset
from ..mining import vertical
from ..mining.engines import CountingEngine, count_pass, create_engine
from ..mining.itemset_index import LargeItemsetIndex
from ..obs import api as obs
from ..obs.registry import MetricsRegistry, stats_property
from ..taxonomy.tree import Taxonomy
from .pool import PoolConfig, PoolStats, WorkerPool, resolve_n_jobs
from .shards import plan_shards


class ParallelStats:
    """Accumulated shard/worker accounting across parallel operations.

    One instance is typically threaded through a whole mining run (see
    ``MiningConfig.n_jobs``) and absorbs the pool statistics of every
    sharded counting pass. Since the observability layer (DESIGN.md §8)
    every field is a view over a
    :class:`~repro.obs.registry.MetricsRegistry` under ``parallel.*``
    metric names — by default a private registry (the classic
    standalone-accumulator behavior); pass ``registry=`` to record into
    a shared one and ``prefix=`` to namespace the metrics.
    """

    #: field name -> registry counter name
    _FIELDS = {
        "shards": "parallel.shards",
        "worker_tasks": "parallel.worker_tasks",
        "workers_launched": "parallel.workers_launched",
        "worker_retries": "parallel.worker_retries",
        "worker_timeouts": "parallel.worker_timeouts",
        "worker_crashes": "parallel.worker_crashes",
        "worker_fallbacks": "parallel.worker_fallbacks",
        "serial_tasks": "parallel.serial_tasks",
        "shm_publishes": "parallel.shm.publishes",
        "shm_batches": "parallel.shm.batches",
        "shm_bytes": "parallel.shm.bytes",
    }

    #: Fields backed by a gauge (merge keeps the maximum) instead of a
    #: counter: segment size is a high-water mark, not a running total.
    _GAUGE_FIELDS = frozenset({"shm_bytes"})

    __slots__ = ("registry", "_prefix")

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        prefix: str = "",
        **values: int,
    ) -> None:
        self.registry = (
            registry if registry is not None else MetricsRegistry()
        )
        self._prefix = prefix
        for name, value in values.items():
            if name not in self._FIELDS:
                raise TypeError(
                    f"ParallelStats has no field {name!r}; "
                    f"choose from {tuple(self._FIELDS)}"
                )
            setattr(self, name, value)

    def absorb(self, pool_stats: PoolStats) -> None:
        """Fold one pool's lifetime statistics into this accumulator."""
        self.worker_tasks += pool_stats.tasks
        self.workers_launched += pool_stats.workers_launched
        self.worker_retries += pool_stats.retries
        self.worker_timeouts += pool_stats.timeouts
        self.worker_crashes += pool_stats.crashes + pool_stats.errors
        self.worker_fallbacks += pool_stats.fallbacks
        self.serial_tasks += pool_stats.serial_tasks

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{name}={getattr(self, name)}" for name in self._FIELDS
        )
        return f"ParallelStats({fields})"


for _name, _metric in ParallelStats._FIELDS.items():
    _kind = "gauge" if _name in ParallelStats._GAUGE_FIELDS else "counter"
    setattr(ParallelStats, _name, stats_property(_metric, _kind))
del _name, _metric, _kind


def _count_shard(payload):
    """Worker task: count all candidates within one shard of rows.

    Returns ``(counts, registry)`` — *registry* holds the shard's
    ``worker.*``-scoped metrics when the driver requested observation
    (the trailing payload flag), else ``None``. The driver merges
    shipped registries into its own; driver-scope totals stay untouched,
    so parallel and serial runs report identical ``counting.*`` numbers.
    """
    rows, candidates, taxonomy, engine, restrict, observe = payload
    state = engine.prepare(rows, taxonomy)
    if not observe:
        counts = count_pass(
            engine,
            state,
            candidates,
            restrict_to_candidate_items=restrict,
        )
        return counts, None
    with obs.worker_collection() as registry:
        with obs.span("parallel.shard") as span:
            span.annotate("rows", len(rows))
            span.annotate("candidates", len(candidates))
            counts = count_pass(
                engine,
                state,
                candidates,
                restrict_to_candidate_items=restrict,
            )
    return counts, registry


def _count_shard_cached(payload):
    """Worker task: count candidates against a shipped shard-local index.

    The parent builds each shard's :class:`~repro.mining.vertical.
    VerticalIndex` once (one physical pass for the whole plan) and ships
    the prebuilt bitmaps on every counting pass, so workers never
    re-derive item bitsets from raw rows — the cross-level reuse that
    makes ``engine="cached"`` compose with ``n_jobs > 1``. Returns
    ``(counts, registry)`` exactly like :func:`_count_shard`.
    """
    shard_index, candidates, taxonomy, observe = payload
    if not observe:
        return shard_index.count(candidates, taxonomy=taxonomy), None
    with obs.worker_collection() as registry:
        with obs.span("parallel.shard") as span:
            span.annotate("rows", shard_index.n_rows)
            span.annotate("candidates", len(candidates))
            stats = vertical.CacheStats(registry=registry, prefix="worker.")
            counts = shard_index.count(
                candidates, taxonomy=taxonomy, stats=stats
            )
    return counts, registry


def _count_mmap_shard(payload):
    """Worker task: count candidates over a group of mmapped segments.

    The payload carries :class:`~repro.mining.segmatrix.Segment`
    descriptors — index, row range, node table and spill-file path, *not*
    the word blocks — and the worker memory-maps each block from its own
    process. Nothing row-shaped or block-shaped crosses the pipe, the
    segment-aligned analogue of the shm engine's zero-copy attach.
    Returns ``(counts, registry)`` exactly like :func:`_count_shard`.
    """
    from ..mining.segmatrix import count_segment_block

    segments, candidates, taxonomy, batch_words, observe = payload

    def run(stats=None):
        totals: dict[Itemset, int] = dict.fromkeys(candidates, 0)
        for segment in segments:
            block = segment.open_block()
            if stats is not None:
                stats.segments_mmap_reads += 1
            partial = count_segment_block(
                segment, block, candidates,
                taxonomy=taxonomy, batch_words=batch_words, stats=stats,
            )
            for items, count in partial.items():
                totals[items] += count
        return totals

    if not observe:
        return run(), None
    with obs.worker_collection() as registry:
        with obs.span("parallel.shard") as span:
            span.annotate("segments", len(segments))
            span.annotate("candidates", len(candidates))
            stats = vertical.CacheStats(registry=registry, prefix="worker.")
            counts = run(stats)
    return counts, registry


def _mine_shard(payload) -> list[Itemset]:
    """Worker task: phase-1 local mining of one Partition shard."""
    # Imported lazily: repro.mining.partition sits above this module in
    # the import graph (it counts through the engine registry).
    from ..mining.partition import mine_local_partition

    rows, minsup, max_size = payload
    return sorted(mine_local_partition(list(rows), minsup, max_size))


def parallel_count_supports(
    transactions: Iterable[Itemset],
    candidates: Collection[Itemset],
    taxonomy: Taxonomy | None = None,
    engine: str | CountingEngine = "bitmap",
    restrict_to_candidate_items: bool = False,
    n_jobs: int | None = None,
    shard_rows: int | None = None,
    pool_config: PoolConfig | None = None,
    stats: ParallelStats | None = None,
    cache_stats=None,
) -> dict[Itemset, int]:
    """Sharded support counting; bit-identical to the serial engines.

    Parameters
    ----------
    transactions:
        The rows of one database pass (already scan-counted by the
        caller, exactly like the serial engines), or the scan-counted
        database itself. The database form is required for shard-local
        caching under ``engine="cached"`` and equivalent otherwise
        (one ``scan()`` is recorded here instead of at the caller).
    candidates:
        Canonical itemsets to count.
    taxonomy, restrict_to_candidate_items:
        As for the serial engines; ancestor extension happens *inside*
        each worker so it parallelizes too.
    engine:
        The engine each shard delegates to: a registry spec or a built
        :class:`~repro.mining.engines.CountingEngine` (a parallel
        wrapper is unwrapped to its inner engine). With a caching engine
        and a database, shard-local vertical indexes are built once
        (packed when the engine is configured packed) and re-shipped to
        workers on every later pass; with ``"numpy"`` each worker packs
        its own shard per pass.
    n_jobs:
        Worker processes; ``None`` = one per CPU, ``1`` = serial
        in-process.
    shard_rows:
        Target rows per shard; default splits the pass into ``n_jobs``
        equal shards.
    pool_config:
        Full :class:`~repro.parallel.pool.PoolConfig` override (timeout,
        retries, backoff, start method); its ``n_jobs`` wins over the
        *n_jobs* argument when given.
    stats:
        Optional :class:`ParallelStats` accumulator.
    cache_stats:
        Optional :class:`~repro.mining.vertical.CacheStats` accumulator
        for the caching/packed engines.

    Returns
    -------
    dict
        Absolute count per candidate, every candidate present.
    """
    candidate_list = list(candidates)
    if not candidate_list:
        return {}
    jobs = pool_config.n_jobs if pool_config is not None else (
        resolve_n_jobs(n_jobs)
    )
    if not isinstance(engine, CountingEngine):
        engine = create_engine(engine)
    if engine.wraps:
        engine = engine.inner
    if engine.capabilities.out_of_core and hasattr(transactions, "scan"):
        return _count_mmap_sharded(
            engine,
            transactions,
            candidate_list,
            taxonomy,
            jobs,
            pool_config,
            stats,
            cache_stats,
        )
    if engine.capabilities.caching and hasattr(transactions, "scan"):
        return _count_cached_sharded(
            transactions,
            candidate_list,
            taxonomy,
            jobs,
            shard_rows,
            pool_config,
            stats,
            getattr(engine, "use_cache", True),
            cache_stats,
            getattr(engine, "packed", False),
            getattr(engine, "batch_words", None),
        )
    if hasattr(transactions, "scan"):
        transactions = transactions.scan()
    rows = (
        transactions
        if isinstance(transactions, (list, tuple))
        else list(transactions)
    )
    shards = plan_shards(rows, shard_rows=shard_rows, n_shards=jobs)
    if stats is not None:
        stats.shards += len(shards)
    if jobs == 1 or len(shards) <= 1:
        if stats is not None:
            stats.serial_tasks += len(shards)
        return count_pass(
            engine,
            engine.prepare(rows, taxonomy),
            candidate_list,
            restrict_to_candidate_items=restrict_to_candidate_items,
            cache_stats=cache_stats,
        )
    pool = WorkerPool(pool_config or PoolConfig(n_jobs=jobs))
    observe = obs.enabled()
    payloads = [
        (
            shard.rows,
            candidate_list,
            taxonomy,
            engine,
            restrict_to_candidate_items,
            observe,
        )
        for shard in shards
    ]
    with obs.span("parallel.map") as span:
        span.annotate("shards", len(shards))
        span.annotate("jobs", jobs)
        partials = pool.map(_count_shard, payloads)
    totals: dict[Itemset, int] = dict.fromkeys(candidate_list, 0)
    for partial, worker_registry in partials:
        obs.merge_registry(worker_registry)
        for items, count in partial.items():
            totals[items] += count
    if stats is not None:
        stats.absorb(pool.stats)
    return totals


def _count_mmap_sharded(
    engine,
    database,
    candidate_list: list[Itemset],
    taxonomy: Taxonomy | None,
    jobs: int,
    pool_config: PoolConfig | None,
    stats: ParallelStats | None,
    cache_stats,
) -> dict[Itemset, int]:
    """One sharded pass over an out-of-core segmented matrix.

    The parent synchronizes the engine-owned
    :class:`~repro.mining.segmatrix.SegmentedPackedMatrix` (incremental:
    unchanged and append-only databases never repack untouched
    segments), then hands each worker a contiguous *group of segment
    descriptors* — workers map their own spill files instead of
    receiving pickled row slices. Partial counts over disjoint row
    ranges sum to exactly the serial result. One logical pass is
    recorded per call, the same cost-model shape as the cached path.
    """
    matrix = engine.matrix_for(database, cache_stats)
    database.count_logical_pass()
    segments = matrix.segments
    batch_words = getattr(engine, "batch_words", None)
    if stats is not None:
        stats.shards += len(segments)
    if jobs == 1 or len(segments) <= 1:
        if stats is not None:
            stats.serial_tasks += len(segments)
        return matrix.count(
            candidate_list,
            taxonomy=taxonomy,
            batch_words=batch_words,
            stats=cache_stats,
        )
    n_groups = min(jobs, len(segments))
    base, extra = divmod(len(segments), n_groups)
    groups = []
    start = 0
    for position in range(n_groups):
        size = base + (1 if position < extra else 0)
        groups.append(segments[start:start + size])
        start += size
    pool = WorkerPool(pool_config or PoolConfig(n_jobs=jobs))
    observe = obs.enabled()
    payloads = [
        (group, candidate_list, taxonomy, batch_words, observe)
        for group in groups
    ]
    with obs.span("parallel.map") as span:
        span.annotate("shards", len(segments))
        span.annotate("jobs", jobs)
        pairs = pool.map(_count_mmap_shard, payloads)
    totals: dict[Itemset, int] = dict.fromkeys(candidate_list, 0)
    for partial, worker_registry in pairs:
        obs.merge_registry(worker_registry)
        for items, count in partial.items():
            totals[items] += count
    if stats is not None:
        stats.absorb(pool.stats)
    return totals


def _count_cached_sharded(
    database,
    candidate_list: list[Itemset],
    taxonomy: Taxonomy | None,
    jobs: int,
    shard_rows: int | None,
    pool_config: PoolConfig | None,
    stats: ParallelStats | None,
    use_cache: bool,
    cache_stats,
    packed: bool = False,
    batch_words: int | None = None,
) -> dict[Itemset, int]:
    """One sharded counting pass served from shard-local vertical indexes.

    Building the indexes costs one physical pass (recorded at the parent);
    every pass, including the first, records exactly one logical pass —
    the same cost-model shape as the serial cached engine. With
    ``packed=True`` the shard indexes hold bit-packed word arrays and
    workers run the vectorized kernel.
    """
    indexes = vertical.get_shard_indexes(
        database,
        shard_rows=shard_rows,
        n_shards=jobs,
        use_cache=use_cache,
        stats=cache_stats,
        packed=packed,
    )
    database.count_logical_pass()
    if stats is not None:
        stats.shards += len(indexes)
    if jobs == 1 or len(indexes) <= 1:
        if stats is not None:
            stats.serial_tasks += len(indexes)
        partials = [
            index.count(
                candidate_list, taxonomy=taxonomy, stats=cache_stats,
                batch_words=batch_words,
            )
            for index in indexes
        ]
    else:
        pool = WorkerPool(pool_config or PoolConfig(n_jobs=jobs))
        observe = obs.enabled()
        payloads = [
            (index, candidate_list, taxonomy, observe)
            for index in indexes
        ]
        with obs.span("parallel.map") as span:
            span.annotate("shards", len(indexes))
            span.annotate("jobs", jobs)
            pairs = pool.map(_count_shard_cached, payloads)
        partials = []
        for partial, worker_registry in pairs:
            obs.merge_registry(worker_registry)
            partials.append(partial)
        if stats is not None:
            stats.absorb(pool.stats)
    totals: dict[Itemset, int] = dict.fromkeys(candidate_list, 0)
    for partial in partials:
        for items, count in partial.items():
            totals[items] += count
    if cache_stats is not None:
        cache_stats.bytes = max(
            cache_stats.bytes, sum(index.nbytes for index in indexes)
        )
    return totals


def parallel_partition(
    database,
    minsup: float,
    n_jobs: int | None = None,
    partitions: int | None = None,
    shard_rows: int | None = None,
    engine: str | CountingEngine = "bitmap",
    max_size: int | None = None,
    pool_config: PoolConfig | None = None,
    stats: ParallelStats | None = None,
) -> LargeItemsetIndex:
    """Two-pass Partition mining with one worker per partition.

    Phase 1 plans one shard per partition (one recorded pass) and mines
    each shard's locally large itemsets in its own worker; phase 2 counts
    the merged candidate union with the sharded engine (the second
    recorded pass). Output is identical to
    :func:`repro.mining.partition.find_large_itemsets_partition`
    (property-tested).

    Parameters
    ----------
    database:
        A scan-counted database of transactions over plain items (extend
        first with :func:`repro.mining.generalized.extend_database` for
        the generalized setting).
    minsup:
        Fractional minimum support in ``(0, 1]``.
    n_jobs:
        Worker processes; ``None`` = one per CPU.
    partitions:
        Number of phase-1 partitions; defaults to the worker count.
    shard_rows:
        Alternative partition sizing by row count (overrides
        *partitions*).
    engine:
        Serial engine for the phase-2 global count.
    max_size, pool_config, stats:
        As for :func:`parallel_count_supports`.
    """
    check_fraction(minsup, "minsup")
    jobs = pool_config.n_jobs if pool_config is not None else (
        resolve_n_jobs(n_jobs)
    )
    parts = partitions if partitions is not None else jobs

    # Phase 1 — pass one: shard the database, mine each shard locally.
    shards = plan_shards(database, shard_rows=shard_rows, n_shards=parts)
    if stats is not None:
        stats.shards += len(shards)
    payloads = [(shard.rows, minsup, max_size) for shard in shards]
    if jobs == 1 or len(shards) <= 1:
        if stats is not None:
            stats.serial_tasks += len(shards)
        local_results = [_mine_shard(payload) for payload in payloads]
    else:
        pool = WorkerPool(pool_config or PoolConfig(n_jobs=jobs))
        local_results = pool.map(_mine_shard, payloads)
        if stats is not None:
            stats.absorb(pool.stats)

    global_candidates: set[Itemset] = set()
    for local in local_results:
        global_candidates.update(local)

    index = LargeItemsetIndex()
    if not global_candidates:
        return index

    # Phase 2 — pass two: sharded global count of the merged union.
    total = len(database)
    min_count = minsup * total
    counts = parallel_count_supports(
        database.scan(),
        sorted(global_candidates),
        engine=engine,
        n_jobs=jobs,
        shard_rows=shard_rows,
        pool_config=pool_config,
        stats=stats,
    )
    for candidate, count in counts.items():
        if count >= min_count:
            index.add(candidate, count / total)
    return index
