"""Unit tests for the analyze subcommand and the --explain flag."""

import pytest

from repro.cli import main
from repro.data.database import TransactionDatabase
from repro.data.io import save_basket_file, save_taxonomy_file
from repro.taxonomy.builders import taxonomy_from_nested


@pytest.fixture
def dataset_files(tmp_path):
    taxonomy = taxonomy_from_nested(
        {
            "drinks": {
                "soda": ["cola", "lemonade"],
                "water": ["still", "sparkling"],
            }
        }
    )
    cola = taxonomy.id_of("cola")
    lemonade = taxonomy.id_of("lemonade")
    still = taxonomy.id_of("still")
    rows = (
        [[cola, still]] * 40
        + [[lemonade]] * 40
        + [[cola]] * 15
        + [[taxonomy.id_of("sparkling")]] * 5
    )
    baskets = tmp_path / "d.basket"
    tax = tmp_path / "d.tax"
    save_basket_file(TransactionDatabase(rows), baskets)
    save_taxonomy_file(taxonomy, tax)
    return str(baskets), str(tax)


class TestAnalyze:
    def test_prints_profile(self, dataset_files, capsys):
        baskets, taxonomy = dataset_files
        code = main(
            ["analyze", "--baskets", baskets, "--taxonomy", taxonomy]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "avg_fanout" in out
        assert "depth histogram" in out

    def test_balance_section(self, dataset_files, capsys):
        baskets, taxonomy = dataset_files
        main(["analyze", "--baskets", baskets, "--taxonomy", taxonomy])
        out = capsys.readouterr().out
        assert "least balanced categories" in out

    def test_coarse_fanout_flag(self, dataset_files, capsys):
        baskets, taxonomy = dataset_files
        code = main(
            [
                "analyze",
                "--baskets", baskets,
                "--taxonomy", taxonomy,
                "--coarse-fanout", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "coarse categories" in out


class TestMineExplain:
    def test_explain_prints_derivations(self, dataset_files, capsys):
        baskets, taxonomy = dataset_files
        code = main(
            [
                "mine",
                "--baskets", baskets,
                "--taxonomy", taxonomy,
                "--minsup", "0.1",
                "--minri", "0.3",
                "--explain",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        if "=/=>" in out:  # rules found: derivations must follow
            assert "E[sup]" in out
            assert "RI =" in out

    def test_sibling_cap_flag_accepted(self, dataset_files, capsys):
        baskets, taxonomy = dataset_files
        code = main(
            [
                "mine",
                "--baskets", baskets,
                "--taxonomy", taxonomy,
                "--minsup", "0.1",
                "--minri", "0.3",
                "--max-sibling-replacements", "1",
            ]
        )
        assert code == 0
