"""End-to-end pipeline integration tests on synthetic data."""

import pytest

from repro.core.api import MiningConfig, mine_negative_rules
from repro.core.negmining import ImprovedNegativeMiner, NaiveNegativeMiner
from repro.mining.generalized import mine_generalized
from repro.synthetic.generator import generate_dataset
from repro.synthetic.params import GeneratorParams

PARAMS = GeneratorParams(
    num_transactions=1200,
    num_items=300,
    num_roots=8,
    num_clusters=40,
    fanout=5.0,
    avg_transaction_size=6.0,
    avg_itemset_size=4.0,
    avg_cluster_size=3.0,
)
MINSUP = 0.12
MINRI = 0.5


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(PARAMS, seed=77)


@pytest.fixture(scope="module")
def result(dataset):
    return mine_negative_rules(
        dataset.database, dataset.taxonomy, minsup=MINSUP, minri=MINRI
    )


class TestPipelineInvariants:
    def test_produces_rules(self, result):
        assert result.rules
        assert result.negative_itemsets

    def test_rule_sides_partition_negative_itemsets(self, result):
        negative_sets = {n.items for n in result.negative_itemsets}
        for rule in result.rules:
            assert set(rule.antecedent).isdisjoint(rule.consequent)
            assert rule.items in negative_sets

    def test_rule_sides_are_large(self, result):
        for rule in result.rules:
            assert result.large_itemsets.is_large(rule.antecedent)
            assert result.large_itemsets.is_large(rule.consequent)
            assert rule.antecedent_support >= MINSUP
            assert rule.consequent_support >= MINSUP

    def test_ri_recomputable(self, result):
        for rule in result.rules:
            recomputed = (
                rule.expected_support - rule.actual_support
            ) / rule.antecedent_support
            assert rule.ri == pytest.approx(recomputed)
            assert rule.ri >= MINRI

    def test_negative_itemsets_not_large(self, result):
        for negative in result.negative_itemsets:
            assert negative.items not in result.large_itemsets

    def test_negative_itemsets_below_expectation(self, result):
        for negative in result.negative_itemsets:
            assert negative.actual_support < negative.expected_support
            assert negative.deviation >= MINSUP * MINRI - 1e-12

    def test_candidates_cover_negatives(self, result):
        for negative in result.negative_itemsets:
            assert negative.items in result.candidates


class TestMinerEquivalence:
    def test_naive_equals_improved(self, dataset):
        improved = ImprovedNegativeMiner(
            dataset.database, dataset.taxonomy, MINSUP, MINRI
        ).mine()
        naive = NaiveNegativeMiner(
            dataset.database, dataset.taxonomy, MINSUP, MINRI
        ).mine()
        assert {n.items for n in naive.negatives} == {
            n.items for n in improved.negatives
        }
        improved_actual = {
            n.items: n.actual_support for n in improved.negatives
        }
        for negative in naive.negatives:
            assert negative.actual_support == pytest.approx(
                improved_actual[negative.items]
            )

    def test_naive_costs_more_passes_at_depth(self, dataset):
        """With 3+ levels the 2n vs n+1 schedule gap must show."""
        improved = ImprovedNegativeMiner(
            dataset.database, dataset.taxonomy, MINSUP, MINRI
        ).mine()
        naive = NaiveNegativeMiner(
            dataset.database, dataset.taxonomy, MINSUP, MINRI
        ).mine()
        levels = improved.large_itemsets.max_size
        if levels >= 3:
            assert naive.stats.data_passes > improved.stats.data_passes

    def test_batching_is_output_invariant(self, dataset):
        whole = ImprovedNegativeMiner(
            dataset.database, dataset.taxonomy, MINSUP, MINRI
        ).mine()
        batched = ImprovedNegativeMiner(
            dataset.database,
            dataset.taxonomy,
            MINSUP,
            MINRI,
            max_candidates_in_memory=50,
        ).mine()
        assert [n.items for n in batched.negatives] == [
            n.items for n in whole.negatives
        ]


class TestConfigurationEquivalence:
    @pytest.fixture(scope="class")
    def small_dataset(self):
        """A reduced dataset for the slow-engine comparisons."""
        params = GeneratorParams(
            num_transactions=300,
            num_items=120,
            num_roots=5,
            num_clusters=20,
            fanout=4.0,
            avg_transaction_size=5.0,
            avg_itemset_size=3.0,
            avg_cluster_size=3.0,
        )
        return generate_dataset(params, seed=3)

    @pytest.fixture(scope="class")
    def hashtree_result(self, small_dataset):
        return mine_negative_rules(
            small_dataset.database, small_dataset.taxonomy,
            minsup=MINSUP, minri=MINRI, engine="hashtree",
        )

    @pytest.mark.parametrize("engine", ["bitmap", "index", "brute"])
    def test_engines_agree_with_hashtree(
        self, small_dataset, hashtree_result, engine
    ):
        other = mine_negative_rules(
            small_dataset.database, small_dataset.taxonomy,
            minsup=MINSUP, minri=MINRI, engine=engine,
        )
        assert {
            (r.antecedent, r.consequent) for r in hashtree_result.rules
        } == {(r.antecedent, r.consequent) for r in other.rules}

    def test_estmerge_agrees_with_cumulate(self, dataset):
        base = mine_negative_rules(
            dataset.database, dataset.taxonomy,
            minsup=MINSUP, minri=MINRI, algorithm="cumulate",
        )
        other = mine_negative_rules(
            dataset.database, dataset.taxonomy,
            minsup=MINSUP, minri=MINRI, algorithm="estmerge", seed=5,
        )
        assert {(r.antecedent, r.consequent) for r in base.rules} == {
            (r.antecedent, r.consequent) for r in other.rules
        }

    def test_config_round_trip(self, dataset):
        config = MiningConfig(minsup=MINSUP, minri=MINRI, miner="improved")
        result = mine_negative_rules(
            dataset.database, dataset.taxonomy, config=config
        )
        assert result.config == config


class TestPositiveSubstrateConsistency:
    def test_pipeline_large_itemsets_match_direct_mining(self, dataset):
        direct = mine_generalized(
            dataset.database, dataset.taxonomy, MINSUP
        )
        result = mine_negative_rules(
            dataset.database, dataset.taxonomy, minsup=MINSUP, minri=MINRI
        )
        assert dict(result.large_itemsets.items()) == dict(direct.items())
