"""Convenience constructors for :class:`~repro.taxonomy.tree.Taxonomy`.

Three entry points cover the common sources of taxonomy data:

* :func:`taxonomy_from_parents` — already have integer ids and a child ->
  parent map (the internal representation).
* :func:`taxonomy_from_edges` — a list of ``(parent_name, child_name)`` pairs,
  e.g. parsed from a merchandising hierarchy export. Ids are assigned
  automatically.
* :func:`taxonomy_from_nested` — a nested ``dict`` literal, which reads
  naturally in examples and tests::

      taxonomy_from_nested({
          "beverages": {
              "soft drinks": ["Coke", "Pepsi"],
              "bottled water": ["Evian", "Perrier"],
          },
      })
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from ..errors import TaxonomyError
from .tree import Taxonomy

Nested = Mapping[str, "Nested | Sequence[str]"]


def taxonomy_from_parents(
    parents: Mapping[int, int],
    names: Mapping[int, str] | None = None,
    extra_roots: Iterable[int] = (),
) -> Taxonomy:
    """Build a taxonomy from a child -> parent id map.

    Thin wrapper kept for symmetry with the other builders.
    """
    return Taxonomy(parents, names=names, extra_roots=extra_roots)


def taxonomy_from_edges(
    edges: Iterable[tuple[str, str]],
    isolated: Iterable[str] = (),
) -> Taxonomy:
    """Build a taxonomy from ``(parent_name, child_name)`` string pairs.

    Node ids are assigned in first-appearance order starting at 0. Names
    must be unique — the same string always denotes the same node.

    Parameters
    ----------
    edges:
        Parent/child name pairs. A name may appear as a parent in many
        edges but as a child in at most one (single-parent forest).
    isolated:
        Names of items that belong to no category.
    """
    ids: dict[str, int] = {}

    def intern_name(name: str) -> int:
        if name not in ids:
            ids[name] = len(ids)
        return ids[name]

    parents: dict[int, int] = {}
    for parent_name, child_name in edges:
        parent_id = intern_name(parent_name)
        child_id = intern_name(child_name)
        if child_id in parents and parents[child_id] != parent_id:
            raise TaxonomyError(
                f"node {child_name!r} has two parents: "
                f"{child_name!r} is under both "
                f"{parent_name!r} and another category"
            )
        parents[child_id] = parent_id

    extra_roots = [intern_name(name) for name in isolated]
    names = {node_id: name for name, node_id in ids.items()}
    return Taxonomy(parents, names=names, extra_roots=extra_roots)


def taxonomy_from_nested(tree: Nested) -> Taxonomy:
    """Build a taxonomy from a nested mapping of category -> children.

    Values may be nested mappings (sub-categories) or sequences of leaf
    names. See the module docstring for an example.
    """
    edges: list[tuple[str, str]] = []

    def walk(name: str, subtree: Nested | Sequence[str]) -> None:
        if isinstance(subtree, Mapping):
            for child_name, child_tree in subtree.items():
                edges.append((name, child_name))
                walk(child_name, child_tree)
        else:
            for leaf_name in subtree:
                if not isinstance(leaf_name, str):
                    raise TaxonomyError(
                        f"leaf names must be strings, got {leaf_name!r}"
                    )
                edges.append((name, leaf_name))

    if not isinstance(tree, Mapping):
        raise TaxonomyError("nested taxonomy must be a mapping at top level")
    for root_name, subtree in tree.items():
        walk(root_name, subtree)
    return taxonomy_from_edges(edges)
