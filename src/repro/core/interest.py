"""The rule interest measure RI (paper Section 2).

For a negative rule ``X =/=> Y`` over the negative itemset ``n = X ∪ Y``::

    RI = (E[support(n)] - support(n)) / support(X)

RI is *negatively* related to the actual support: it is highest when the
actual support is zero and zero (or below) when the actual support meets or
exceeds the expectation. A rule is *strong* when ``RI >= MinRI`` and both
``support(X)`` and ``support(Y)`` meet MinSup.
"""

from __future__ import annotations

from ..errors import ConfigError


def rule_interest(
    expected_support: float,
    actual_support: float,
    antecedent_support: float,
) -> float:
    """Compute RI for a negative rule.

    Parameters
    ----------
    expected_support:
        ``E[support(X ∪ Y)]`` derived from the taxonomy (see
        :mod:`repro.core.expectation`).
    actual_support:
        Measured ``support(X ∪ Y)``.
    antecedent_support:
        ``support(X)``; must be positive — the paper requires the
        antecedent to be a large itemset, so a zero here indicates a
        caller bug rather than a data property.

    Returns
    -------
    float
        The (possibly negative) interest value. Values below zero mean the
        itemset occurs *more* often than expected.
    """
    if antecedent_support <= 0.0:
        raise ConfigError(
            "antecedent support must be positive "
            f"(got {antecedent_support!r}); the antecedent of a negative "
            "rule must be a large itemset"
        )
    if expected_support < 0.0 or actual_support < 0.0:
        raise ConfigError("supports cannot be negative")
    return (expected_support - actual_support) / antecedent_support


def deviation_threshold(minsup: float, minri: float) -> float:
    """The minimum expectation-vs-actual gap a negative itemset must show.

    Section 2 decomposes the problem into "finding itemsets whose actual
    support deviates at least ``MinSup × MinRI`` from their expected
    support": since any rule antecedent has support at least MinSup, a gap
    below this bound cannot yield RI >= MinRI for any split of the itemset.
    """
    if minsup <= 0.0 or minri <= 0.0:
        raise ConfigError("minsup and minri must be positive")
    return minsup * minri
