"""The hash table of large itemsets (paper Section 2.4).

"All large itemsets are also placed in a hash table for fast lookup": both
negative candidate generation (dedup against existing large itemsets) and
rule generation (subset supports for RI denominators) need constant-time
support lookups. :class:`LargeItemsetIndex` is that table, keyed on canonical
itemsets, with supports stored as fractions of |D|.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator, Mapping

from ..errors import ConfigError
from ..itemset import Itemset, itemset
from ..serialize import check_payload, header


class LargeItemsetIndex:
    """Mapping from large itemset to fractional support, with size views.

    The index is the hand-off between positive and negative mining: the
    generalized miners produce one, and the negative candidate generator and
    rule generator consume it.
    """

    __slots__ = ("_supports", "_by_size")

    def __init__(self, supports: Mapping[Itemset, float] | None = None) -> None:
        self._supports: dict[Itemset, float] = {}
        self._by_size: dict[int, set[Itemset]] = {}
        if supports:
            for items, support in supports.items():
                self.add(items, support)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, items: Iterable[int], support: float) -> None:
        """Record *items* as large with the given fractional support."""
        canonical = itemset(items)
        if not canonical:
            raise ConfigError("cannot index the empty itemset")
        if not 0.0 <= support <= 1.0:
            raise ConfigError(
                f"support must be a fraction in [0, 1], got {support!r}"
            )
        if canonical not in self._supports:
            self._by_size.setdefault(len(canonical), set()).add(canonical)
        self._supports[canonical] = support

    def merge(self, other: "LargeItemsetIndex") -> None:
        """Absorb another index (later values win on conflict)."""
        for items, support in other.items():
            self.add(items, support)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __contains__(self, items: object) -> bool:
        return items in self._supports

    def is_large(self, items: Itemset) -> bool:
        """True when *items* was recorded as a large itemset."""
        return items in self._supports

    def support(self, items: Itemset) -> float:
        """Fractional support of a recorded itemset.

        Raises :class:`KeyError` when *items* was never recorded — callers
        on the mining path must check :meth:`is_large` first, which keeps
        accidental support-of-small lookups loud.
        """
        return self._supports[items]

    def support_or_none(self, items: Itemset) -> float | None:
        """Fractional support, or None when *items* is not indexed."""
        return self._supports.get(items)

    def of_size(self, size: int) -> frozenset[Itemset]:
        """All recorded itemsets with exactly *size* items."""
        return frozenset(self._by_size.get(size, ()))

    @property
    def sizes(self) -> tuple[int, ...]:
        """Sizes for which at least one itemset is recorded, ascending."""
        return tuple(sorted(self._by_size))

    @property
    def max_size(self) -> int:
        """Largest recorded itemset size (0 when empty)."""
        return max(self._by_size, default=0)

    def items(self) -> Iterator[tuple[Itemset, float]]:
        """Iterate ``(itemset, support)`` pairs in deterministic order."""
        for key in sorted(self._supports):
            yield key, self._supports[key]

    def __iter__(self) -> Iterator[Itemset]:
        return iter(sorted(self._supports))

    def __len__(self) -> int:
        return len(self._supports)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """A JSON-able dict of the index (see :mod:`repro.serialize`).

        Itemsets are emitted in deterministic sorted order as
        ``[items, support]`` pairs — JSON keys cannot be tuples.
        """
        return {
            **header("itemset-index"),
            "itemsets": [
                [list(items), support] for items, support in self.items()
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "LargeItemsetIndex":
        """Rebuild an index from :meth:`to_payload` output."""
        check_payload(payload, "itemset-index")
        index = cls()
        for items, support in payload["itemsets"]:
            index.add(items, support)
        return index

    def to_json(self) -> str:
        """The index as one JSON document (round-trips via
        :meth:`from_json`)."""
        return json.dumps(self.to_payload())

    @classmethod
    def from_json(cls, text: str) -> "LargeItemsetIndex":
        """Parse :meth:`to_json` output back into an equal index."""
        return cls.from_payload(json.loads(text))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LargeItemsetIndex):
            return NotImplemented
        return self._supports == other._supports

    def __repr__(self) -> str:
        by_size = {size: len(self._by_size[size]) for size in self.sizes}
        return f"LargeItemsetIndex(total={len(self)}, by_size={by_size})"
