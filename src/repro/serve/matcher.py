"""Basket scoring: which compiled rules fire on a set of items.

Given a basket (any iterable of item ids), the matcher returns every
rule in the :class:`~repro.serve.rule_index.RuleIndex` whose antecedent
is a subset of the basket. Matching is *taxonomy-aware*: each basket
item is first expanded with its taxonomy ancestors (a customer who
bought Evian holds "Bottled water" and "Beverages" too — the same
extension generalized support counting applies to transactions), so
rules phrased at any taxonomy level fire.

The fast path walks the index's antecedent postings and counts, per
rule slot, how many distinct antecedent items the expanded basket
covers; a rule fires exactly when the count reaches its antecedent
size. That is the classic inverted-index subset test — cost proportional
to the postings touched, not to the rule set. :func:`naive_match` is the
verification oracle: a plain subset scan over *every* rule, kept
deliberately independent of the postings so property tests can assert
the two produce bit-identical results.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from ..core.rulegen import NegativeRule
from ..mining.rules import AssociationRule
from .rule_index import RuleIndex


@dataclass(frozen=True, slots=True)
class Match:
    """One fired rule.

    Attributes
    ----------
    slot, kind:
        The rule's position and kind (``"negative"``/``"positive"``)
        in the index.
    rule:
        The original rule object.
    consequent_present:
        Whether the (expanded) basket already contains the whole
        consequent — for a negative rule that is the anomaly the rule
        predicts against; for a positive rule it means the
        recommendation is already satisfied.
    """

    slot: int
    kind: str
    rule: NegativeRule | AssociationRule
    consequent_present: bool


def expand_basket(
    basket: Iterable[int], index: RuleIndex
) -> frozenset[int]:
    """The basket plus every taxonomy ancestor of every known item.

    Item ids unknown to the taxonomy are kept as-is (they simply cannot
    fire generalized rules); without a taxonomy the basket is returned
    unchanged. Duplicates collapse — matching is set semantics.
    """
    taxonomy = index.taxonomy
    if taxonomy is None:
        return frozenset(basket)
    expanded: set[int] = set()
    for item in basket:
        expanded.add(item)
        if item in taxonomy:
            expanded.update(taxonomy.ancestors(item))
    return frozenset(expanded)


class BasketMatcher:
    """Score baskets against one compiled rule index."""

    __slots__ = ("_index",)

    def __init__(self, index: RuleIndex) -> None:
        self._index = index

    @property
    def index(self) -> RuleIndex:
        return self._index

    def rebind(self, index: RuleIndex) -> None:
        """Swap in a new index (a pushed delta); the matcher is
        stateless beyond the reference, so rebinding is atomic."""
        self._index = index

    def match(self, basket: Iterable[int]) -> list[Match]:
        """All rules whose antecedent the (expanded) basket covers.

        Returns matches in slot order — negatives by descending RI
        first, then positives by descending confidence — so the
        strongest signals lead.
        """
        index = self._index
        expanded = expand_basket(basket, index)
        covered: dict[int, int] = {}
        for item in expanded:
            for slot in index.postings(item):
                covered[slot] = covered.get(slot, 0) + 1
        matches: list[Match] = []
        for slot in sorted(covered):
            entry = index.rule(slot)
            if covered[slot] == len(entry.antecedent):
                matches.append(
                    Match(
                        slot=slot,
                        kind=entry.kind,
                        rule=entry.rule,
                        consequent_present=(
                            expanded.issuperset(entry.consequent)
                        ),
                    )
                )
        return matches


def naive_match(index: RuleIndex, basket: Iterable[int]) -> list[Match]:
    """The verification oracle: subset-scan every rule in the index.

    Shares only :func:`expand_basket` with the fast path; the firing
    test itself is an independent ``issubset`` per rule, so agreement
    with :meth:`BasketMatcher.match` genuinely checks the postings
    construction and the counting logic.
    """
    expanded = expand_basket(basket, index)
    matches: list[Match] = []
    for entry in index.rules:
        if expanded.issuperset(entry.antecedent):
            matches.append(
                Match(
                    slot=entry.slot,
                    kind=entry.kind,
                    rule=entry.rule,
                    consequent_present=expanded.issuperset(
                        entry.consequent
                    ),
                )
            )
    return matches
