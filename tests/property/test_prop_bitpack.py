"""Property-based tests: the numpy engine is bit-identical to brute force.

The bit-packed kernel's contract mirrors the cached engine's: no
observable count ever changes — not for flat candidate sets, not under a
taxonomy (descendant-OR versus per-row ancestor extension), not at word
boundaries (row counts straddling 64-bit words), and not when the packed
``VerticalIndex`` backend evicts bitmaps under a tiny memory budget.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.database import TransactionDatabase
from repro.itemset import itemset
from repro.core.session import MiningSession
from repro.mining.vertical import VerticalIndex
from repro.taxonomy.builders import taxonomy_from_parents

transactions_strategy = st.lists(
    st.lists(
        st.integers(min_value=0, max_value=25), min_size=1, max_size=8
    ).map(itemset),
    min_size=1,
    max_size=40,
)
candidates_strategy = st.lists(
    st.lists(
        st.integers(min_value=0, max_value=25), min_size=1, max_size=4
    ).map(itemset),
    min_size=1,
    max_size=25,
).map(lambda cands: sorted(set(cands)))

# Random three-level taxonomies: each leaf 1..12 under a random category
# 100..103, each category under a random root 200..201.
taxonomy_strategy = st.builds(
    lambda mids, tops: taxonomy_from_parents(
        {leaf: mid for leaf, mid in enumerate(mids, start=1)}
        | {100 + index: top for index, top in enumerate(tops)}
    ),
    st.lists(
        st.integers(min_value=100, max_value=103), min_size=12, max_size=12
    ),
    st.lists(
        st.integers(min_value=200, max_value=201), min_size=4, max_size=4
    ),
)
leaf_transactions_strategy = st.lists(
    st.lists(
        st.integers(min_value=1, max_value=12), min_size=1, max_size=5
    ).map(itemset),
    min_size=1,
    max_size=30,
)


def brute(rows, candidates, taxonomy=None):
    return MiningSession(list(rows), taxonomy, "brute").count(candidates)


def numpy_count(rows, candidates, taxonomy=None, **policy):
    return MiningSession(rows, taxonomy, "numpy", **policy).count(candidates)


@settings(max_examples=60, deadline=None)
@given(transactions_strategy, candidates_strategy)
def test_numpy_matches_brute_flat(transactions, candidates):
    assert numpy_count(transactions, candidates) == brute(
        transactions, candidates
    )


@settings(max_examples=60, deadline=None)
@given(leaf_transactions_strategy, taxonomy_strategy, st.data())
def test_numpy_matches_brute_generalized(transactions, taxonomy, data):
    nodes = sorted(taxonomy.nodes)
    candidates = data.draw(
        st.lists(
            st.lists(st.sampled_from(nodes), min_size=1, max_size=3).map(
                itemset
            ),
            min_size=1,
            max_size=12,
        ).map(lambda cands: sorted(set(cands)))
    )
    assert numpy_count(
        transactions, candidates, taxonomy=taxonomy
    ) == brute(transactions, candidates, taxonomy=taxonomy)


@settings(max_examples=20, deadline=None)
@given(candidates_strategy, st.sampled_from([1, 63, 64, 65, 1000]))
def test_numpy_exact_at_word_boundaries(candidates, n_rows):
    """Row counts straddling uint64 words leave no stray tail bits."""
    transactions = [
        itemset([index % 26, (index * 7) % 26]) for index in range(n_rows)
    ]
    assert numpy_count(transactions, candidates) == brute(
        transactions, candidates
    )


@settings(max_examples=40, deadline=None)
@given(transactions_strategy, candidates_strategy)
def test_numpy_tiny_batches_match_default(transactions, candidates):
    default = numpy_count(transactions, candidates)
    assert numpy_count(transactions, candidates, batch_words=1) == default


@settings(max_examples=40, deadline=None)
@given(transactions_strategy, candidates_strategy)
def test_packed_index_matches_bigint_index(transactions, candidates):
    bigint = VerticalIndex.from_rows(transactions)
    packed = VerticalIndex.from_rows(transactions, packed=True)
    assert packed.count(candidates) == bigint.count(candidates)


@settings(max_examples=40, deadline=None)
@given(leaf_transactions_strategy, taxonomy_strategy, st.data())
def test_packed_index_matches_bigint_generalized(
    transactions, taxonomy, data
):
    nodes = sorted(taxonomy.nodes)
    candidates = data.draw(
        st.lists(
            st.lists(st.sampled_from(nodes), min_size=1, max_size=3).map(
                itemset
            ),
            min_size=1,
            max_size=12,
        ).map(lambda cands: sorted(set(cands)))
    )
    bigint = VerticalIndex.from_rows(transactions)
    packed = VerticalIndex.from_rows(transactions, packed=True)
    assert packed.count(candidates, taxonomy=taxonomy) == bigint.count(
        candidates, taxonomy=taxonomy
    )


@settings(max_examples=40, deadline=None)
@given(transactions_strategy, candidates_strategy)
def test_packed_tiny_budget_still_exact(transactions, candidates):
    """LRU eviction of packed rows rebuilds exactly, never approximates."""
    database = TransactionDatabase(transactions)
    expected = brute(transactions, candidates)
    session = MiningSession(
        database, engine="cached", cache_bytes=1, packed=True
    )
    for _ in range(2):
        assert session.count(candidates) == expected


@settings(max_examples=40, deadline=None)
@given(transactions_strategy, candidates_strategy)
def test_packed_cached_engine_across_passes(transactions, candidates):
    database = TransactionDatabase(transactions)
    expected = brute(transactions, candidates)
    session = MiningSession(database, engine="cached", packed=True)
    for _ in range(3):
        assert session.count(candidates) == expected
    assert database.scans == 1
